package nodespec

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"jsweep/internal/netcomm"
	"jsweep/internal/obs"
)

// Environment variables carrying a launch's per-node parameters. A
// process started with EnvRank set is a node worker; cmd/jsweep-node
// reads them as flag defaults and the test binaries use them to re-exec
// themselves as nodes.
const (
	// EnvSpec holds the solve Spec as JSON.
	EnvSpec = "JSWEEP_NODE_SPEC"
	// EnvRank is the node's rank.
	EnvRank = "JSWEEP_NODE_RANK"
	// EnvRendezvous is the rendezvous host:port.
	EnvRendezvous = "JSWEEP_NODE_RENDEZVOUS"
	// EnvCluster is the launch-scoped cluster id.
	EnvCluster = "JSWEEP_NODE_CLUSTER"
	// EnvVerify asks the node to cross-check against the serial
	// reference ("1").
	EnvVerify = "JSWEEP_NODE_VERIFY"
	// EnvResult is the launcher's result-collector address; the rank it
	// is set for (rank 0) streams progress and the terminal result back
	// over the submission lane (internal/serve reads it).
	EnvResult = "JSWEEP_NODE_RESULT"
	// EnvTrace asks the node to trace its solve phases ("1"); the
	// events ride back to the launcher inside the result stream.
	EnvTrace = "JSWEEP_NODE_TRACE"
)

// NodeEnv reconstructs a node's spec and options from the environment.
// ok is false when the process is not a launched node (EnvRank unset).
func NodeEnv() (spec Spec, o NodeOptions, ok bool, err error) {
	rankStr := os.Getenv(EnvRank)
	if rankStr == "" {
		return Spec{}, NodeOptions{}, false, nil
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		return Spec{}, NodeOptions{}, true, fmt.Errorf("nodespec: bad %s=%q", EnvRank, rankStr)
	}
	spec, err = UnmarshalSpec(os.Getenv(EnvSpec))
	if err != nil {
		return Spec{}, NodeOptions{}, true, err
	}
	o = NodeOptions{
		Rank:       rank,
		Rendezvous: os.Getenv(EnvRendezvous),
		Cluster:    os.Getenv(EnvCluster),
		Verify:     os.Getenv(EnvVerify) == "1",
	}
	if os.Getenv(EnvTrace) == "1" {
		o.Tracer = obs.NewTracer(0)
	}
	if o.Rendezvous == "" {
		return Spec{}, NodeOptions{}, true, fmt.Errorf("nodespec: %s not set", EnvRendezvous)
	}
	return spec, o, true, nil
}

// RunFromEnv runs a node whose parameters arrived via the environment,
// logging to w. It is the shared body of cmd/jsweep-node and the test
// re-exec helpers.
func RunFromEnv(w io.Writer) error {
	spec, o, ok, err := NodeEnv()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("nodespec: %s not set — not a launched node", EnvRank)
	}
	o.Log = w
	_, err = Run(spec, o)
	return err
}

// LaunchConfig shapes a local multi-process launch.
type LaunchConfig struct {
	// Spec is the solve; Spec.Procs node processes are spawned.
	Spec Spec
	// NodeCommand is the argv prefix that starts one node worker (the
	// per-node parameters travel in the environment). Empty: a
	// "jsweep-node" binary is looked up next to this executable, then on
	// PATH.
	NodeCommand []string
	// Verify makes rank 0 cross-check against the serial reference.
	Verify bool
	// Trace makes rank 0 trace its solve phases; the events travel back
	// through the result stream (needs ResultAddr to reach the launcher).
	Trace bool
	// ResultAddr, when set, travels to rank 0 as EnvResult: the node
	// dials the launcher's collector there and streams per-iteration
	// progress plus the full converged result back (the result-complete
	// launch path).
	ResultAddr string
	// Timeout bounds the whole launch (default 5m).
	Timeout time.Duration
	// Log receives the rank-prefixed node output (nil = stdout).
	Log io.Writer
}

// LaunchResult summarizes a completed launch.
type LaunchResult struct {
	// FluxHash is the flux bit-pattern hash every rank reported
	// (identical across ranks by construction, or the launch fails).
	FluxHash string
	// Verified reports whether rank 0 ran and passed reference
	// verification.
	Verified bool
	// Wall is the whole launch's wall time.
	Wall time.Duration
}

// findNodeBinary resolves the default node command: a jsweep-node next
// to the running executable, else on PATH.
func findNodeBinary() ([]string, error) {
	if exe, err := os.Executable(); err == nil {
		sibling := exe[:strings.LastIndexByte(exe, '/')+1] + "jsweep-node"
		if st, err := os.Stat(sibling); err == nil && !st.IsDir() {
			return []string{sibling}, nil
		}
	}
	if path, err := exec.LookPath("jsweep-node"); err == nil {
		return []string{path}, nil
	}
	return nil, fmt.Errorf("nodespec: no jsweep-node binary found (next to the executable or on PATH); build it with `go build ./cmd/jsweep-node` or pass NodeCommand")
}

// LaunchLocal spawns Spec.Procs node OS processes on this host, wires
// them through a local rendezvous, waits for the cluster solve, and
// asserts that every rank reported the identical flux hash — the
// cross-process bitwise-agreement certificate.
func LaunchLocal(cfg LaunchConfig) (*LaunchResult, error) {
	return LaunchLocalCtx(context.Background(), cfg)
}

// LaunchLocalCtx is LaunchLocal with cooperative cancellation and
// fail-fast supervision: the first rank that dies (or a done context, or
// the launch timeout) immediately kills every sibling process and closes
// the rendezvous listener, then reaps all children before returning — a
// failed launch never leaves orphan node processes or a dangling
// rendezvous behind. A rank that crashes before the rendezvous completes
// would otherwise strand its siblings inside the bring-up until its
// 60-second timeout.
func LaunchLocalCtx(ctx context.Context, cfg LaunchConfig) (*LaunchResult, error) {
	spec := cfg.Spec.withDefaults()
	world := spec.Procs
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	logw := cfg.Log
	if logw == nil {
		logw = os.Stdout
	}
	nodeCmd := cfg.NodeCommand
	if len(nodeCmd) == 0 {
		var err error
		if nodeCmd, err = findNodeBinary(); err != nil {
			return nil, err
		}
	}
	specJSON, err := MarshalSpec(spec)
	if err != nil {
		return nil, err
	}
	var idBytes [8]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return nil, err
	}
	cluster := "jsweep-" + hex.EncodeToString(idBytes[:])

	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, world)
	if err != nil {
		return nil, err
	}
	defer rz.Close()

	start := time.Now()
	type nodeOut struct {
		hash     string
		verified bool
		err      error
	}
	outs := make([]nodeOut, world)
	cmds := make([]*exec.Cmd, world)
	finished := make(chan int, world)
	var outWG sync.WaitGroup
	var outMu sync.Mutex // serializes writes to logw across ranks
	started := 0
	var startErr error
	for r := 0; r < world; r++ {
		cmd := exec.Command(nodeCmd[0], nodeCmd[1:]...)
		cmd.Env = append(os.Environ(),
			EnvSpec+"="+specJSON,
			EnvRank+"="+strconv.Itoa(r),
			EnvRendezvous+"="+rz.Addr(),
			EnvCluster+"="+cluster,
		)
		if cfg.Verify && r == 0 {
			cmd.Env = append(cmd.Env, EnvVerify+"=1")
		}
		if cfg.ResultAddr != "" && r == 0 {
			cmd.Env = append(cmd.Env, EnvResult+"="+cfg.ResultAddr)
		}
		if cfg.Trace && r == 0 {
			cmd.Env = append(cmd.Env, EnvTrace+"=1")
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			startErr = err
			break
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			startErr = fmt.Errorf("nodespec: start node %d (%s): %w", r, nodeCmd[0], err)
			break
		}
		cmds[r] = cmd
		started++
		outWG.Add(1)
		go func(r int, cmd *exec.Cmd, rd io.Reader) {
			defer outWG.Done()
			sc := bufio.NewScanner(rd)
			sc.Buffer(make([]byte, 64<<10), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				if h, ok := strings.CutPrefix(line, fmt.Sprintf("rank=%d %s", r, fluxHashMarker)); ok {
					outs[r].hash = strings.TrimSpace(h)
				}
				if strings.HasPrefix(line, fmt.Sprintf("rank=%d %s", r, verifyOKMarker)) {
					outs[r].verified = true
				}
				outMu.Lock()
				fmt.Fprintf(logw, "[node %d] %s\n", r, line)
				outMu.Unlock()
			}
			// Wait only after the scanner drained to EOF: Wait closes the
			// pipe on process exit and would race buffered output away.
			if err := cmd.Wait(); err != nil {
				outs[r].err = fmt.Errorf("nodespec: node %d: %w", r, err)
			}
			finished <- r
		}(r, cmd, stdout)
	}
	if startErr != nil {
		rz.Close()
		killAll(cmds)
		outWG.Wait()
		return nil, startErr
	}

	// Supervise: the first failing rank (or cancellation, or the launch
	// timeout) tears the whole launch down at once — close the rendezvous
	// so no straggler can still join, kill every sibling, then keep
	// reaping until every child has exited.
	var firstErr error
	abort := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		rz.Close()
		killAll(cmds)
	}
	ctxDone := ctx.Done()
	deadline := time.After(cfg.Timeout)
	for remaining := started; remaining > 0; {
		select {
		case r := <-finished:
			remaining--
			if outs[r].err != nil && firstErr == nil {
				abort(outs[r].err)
			}
		case <-ctxDone:
			abort(fmt.Errorf("nodespec: launch cancelled: %w", ctx.Err()))
			ctxDone = nil
		case <-deadline:
			abort(fmt.Errorf("nodespec: launch timed out after %v", cfg.Timeout))
			deadline = nil
		}
	}
	outWG.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &LaunchResult{Wall: time.Since(start), Verified: outs[0].verified}
	for r := 0; r < world; r++ {
		if outs[r].hash == "" {
			return nil, fmt.Errorf("nodespec: node %d reported no flux hash", r)
		}
		if outs[r].hash != outs[0].hash {
			return nil, fmt.Errorf("nodespec: flux hash mismatch: rank %d=%s, rank 0=%s — cross-process bitwise agreement broken",
				r, outs[r].hash, outs[0].hash)
		}
	}
	res.FluxHash = outs[0].hash
	if cfg.Verify && !res.Verified {
		return nil, fmt.Errorf("nodespec: rank 0 did not report verify=OK")
	}
	return res, nil
}

func killAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}
