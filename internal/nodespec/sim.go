// The sim backend: a job spec replayed on the discrete-event cluster
// simulator (DESIGN.md substitution #2) instead of being solved. The
// same spec value that drives a real inproc or TCP solve here yields
// the simulated makespan and cost breakdown of one sweep of that
// problem, under the same decomposition, placement, priorities and
// aggregation policy.
package nodespec

import (
	"jsweep/internal/graph"
	"jsweep/internal/priority"
	"jsweep/internal/registry"
	"jsweep/internal/simcluster"
)

// SimRun holds a spec's fully assembled simulation inputs.
type SimRun struct {
	Workload *simcluster.Workload
	Config   simcluster.Config
	Cost     simcluster.CostModel
}

// BuildSim assembles the simulated task system of a spec from the very
// problem the real backends solve: the registry builds the actual mesh
// and decomposition, patches are placed exactly as the real solver
// places them, and one patch DAG per quadrature direction is projected
// from the real cell dependencies (patch-level cycles of cyclic meshes
// are acyclified — the simulator's stand-in for partial computation).
// The spec's workers, grain, priority pair and aggregation knobs carry
// over into the simulated runtime shape.
func BuildSim(s Spec) (*SimRun, error) {
	s = s.withDefaults()
	pair, err := ParsePair(s.Prio)
	if err != nil {
		return nil, err
	}
	prob, d, err := registry.Build(s.Mesh, MeshParams(s))
	if err != nil {
		return nil, err
	}
	groups := prob.Groups
	angles := prob.Quad.NumAngles()
	d.Place(s.Procs)

	np := d.NumPatches()
	w := &simcluster.Workload{
		PatchCells:  make([]int64, np),
		Owner:       append([]int(nil), d.Owner...),
		Octants:     make([]*graph.PatchDAG, angles),
		AngleOctant: make([]int, angles),
		// DAGs are projected from cell granularity on the real mesh, so
		// an edge weight already counts crossing faces.
		FacesPerEdgeScale: 1,
		Groups:            groups,
		Procs:             s.Procs,
	}
	for p := 0; p < np; p++ {
		w.PatchCells[p] = int64(len(d.Cells[p]))
	}
	for a := 0; a < angles; a++ {
		dag := graph.BuildPatchDAG(d, prob.Quad.Directions[a].Omega)
		simcluster.AcyclifyDAG(dag)
		w.Octants[a] = dag
		w.AngleOctant[a] = a
	}

	cfg := simcluster.Config{
		Workers:   s.Workers,
		Grain:     int64(s.Grain),
		PatchPrio: simPatchPrio(w, pair.Patch),
		EmitDelay: simEmitDelay(pair.Vertex),
	}
	if s.Agg {
		cfg.Aggregation = simcluster.Aggregation{
			Enabled:         true,
			MaxBatchStreams: s.AggStreams,
			MaxBatchBytes:   float64(s.AggBytes),
		}
	}
	return &SimRun{
		Workload: w,
		Config:   cfg,
		Cost:     simcluster.DefaultCostModel(groups),
	}, nil
}

// simPatchPrio evaluates the patch strategy on every octant DAG and
// expands it to per-angle priorities.
func simPatchPrio(w *simcluster.Workload, s priority.Strategy) [][]int64 {
	perOctant := make([][]int64, len(w.Octants))
	for o, dag := range w.Octants {
		perOctant[o] = priority.PatchPriorities(s, dag)
	}
	out := make([][]int64, len(w.AngleOctant))
	for a, o := range w.AngleOctant {
		out[a] = perOctant[o]
	}
	return out
}

// simEmitDelay maps a vertex strategy onto the simulator's emission
// delay (see DESIGN.md "Priority → emission-delay mapping").
func simEmitDelay(s priority.Strategy) float64 {
	switch s {
	case priority.SLBD:
		return 0.0
	case priority.LDCP:
		return 0.25
	default: // BFS
		return 0.5
	}
}
