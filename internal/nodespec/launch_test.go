package nodespec

// Launch supervision: a rank that dies before the rendezvous completes
// must take the whole launch down promptly — siblings killed (no orphan
// processes), the rendezvous listener closed, the error surfaced —
// instead of stranding everyone inside the 60-second bring-up timeout.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// writeNodeScript creates a fake node worker: every rank records its PID
// and the rendezvous address under dir, the doomed rank waits until its
// two siblings have checked in (so the orphan assertions have PIDs to
// probe — the supervisor's kill is fast enough to beat a sibling's
// startup otherwise) and then exits with code 7, and every other rank
// execs a long sleep (exec keeps the recorded PID the one to kill — no
// orphan grandchildren).
func writeNodeScript(t *testing.T, dir string, doomedRank int) string {
	t.Helper()
	script := filepath.Join(dir, "node.sh")
	body := fmt.Sprintf(`#!/bin/sh
echo $$ > "%[1]s/pid.$JSWEEP_NODE_RANK"
echo "$JSWEEP_NODE_RENDEZVOUS" > "%[1]s/rendezvous.$JSWEEP_NODE_RANK"
if [ "$JSWEEP_NODE_RANK" = "%[2]d" ]; then
	i=0
	while [ ! -f "%[1]s/pid.0" ] || [ ! -f "%[1]s/pid.1" ]; do
		i=$((i+1))
		[ "$i" -gt 100 ] && break
		sleep 0.05
	done
	exit 7
fi
exec sleep 600
`, dir, doomedRank)
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return script
}

// readPid polls for a script's PID file.
func readPid(t *testing.T, dir string, rank int) int {
	t.Helper()
	path := filepath.Join(dir, "pid."+strconv.Itoa(rank))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, err := os.ReadFile(path); err == nil {
			if pid, err := strconv.Atoi(strings.TrimSpace(string(b))); err == nil {
				return pid
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank %d never wrote its PID file", rank)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// processAlive reports whether pid still exists (signal 0 probe).
func processAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

func TestLaunchFailFastKillsSiblingsAndRendezvous(t *testing.T) {
	dir := t.TempDir()
	script := writeNodeScript(t, dir, 2)
	start := time.Now()
	_, err := LaunchLocal(LaunchConfig{
		Spec:        Spec{Mesh: "kobayashi", N: 8, Procs: 3, Workers: 1},
		NodeCommand: []string{"/bin/sh", script},
		Timeout:     2 * time.Minute,
		Log:         testWriter{t},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("launch succeeded although rank 2 died before rendezvous")
	}
	if !strings.Contains(err.Error(), "node 2") {
		t.Fatalf("launch error %q does not name the dead rank", err)
	}
	// Fail fast: well under the sleeping siblings' runtime and the
	// 60-second rendezvous bring-up timeout.
	if elapsed > 30*time.Second {
		t.Fatalf("launch took %v to surface the dead rank — not fail-fast", elapsed)
	}

	// Orphan check: the surviving ranks' processes must be gone (they
	// were execed sleeps, killed by the supervisor and reaped before
	// LaunchLocal returned).
	for _, rank := range []int{0, 1} {
		pid := readPid(t, dir, rank)
		deadline := time.Now().Add(5 * time.Second)
		for processAlive(pid) {
			if time.Now().After(deadline) {
				t.Fatalf("rank %d (pid %d) still running after the failed launch — orphan process", rank, pid)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The rendezvous listener must be down too: a straggler (or a rerun
	// of the same cluster id) must not be able to join a dead launch.
	rzb, err := os.ReadFile(filepath.Join(dir, "rendezvous.0"))
	if err != nil {
		t.Fatalf("rank 0 never saw the rendezvous address: %v", err)
	}
	addr := strings.TrimSpace(string(rzb))
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatalf("rendezvous listener on %s still accepting after the failed launch", addr)
	}
}

func TestLaunchCancelKillsChildren(t *testing.T) {
	dir := t.TempDir()
	// No doomed rank: every fake node sleeps, so only cancellation can
	// end the launch.
	script := writeNodeScript(t, dir, -1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := LaunchLocalCtx(ctx, LaunchConfig{
			Spec:        Spec{Mesh: "kobayashi", N: 8, Procs: 2, Workers: 1},
			NodeCommand: []string{"/bin/sh", script},
			Timeout:     2 * time.Minute,
			Log:         testWriter{t},
		})
		done <- err
	}()
	pid0 := readPid(t, dir, 0)
	pid1 := readPid(t, dir, 1)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled launch returned nil error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled launch returned %v, want a context.Canceled chain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("cancelled launch still running after 30s (started %v ago)", time.Since(start))
	}
	for _, pid := range []int{pid0, pid1} {
		deadline := time.Now().Add(5 * time.Second)
		for processAlive(pid) {
			if time.Now().After(deadline) {
				t.Fatalf("pid %d survived the cancelled launch — orphan process", pid)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// testWriter forwards node output into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
