package nodespec

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/netcomm"
)

func TestSpecRoundTrip(t *testing.T) {
	s := Spec{
		Mesh: "cyclic", Cells: 300, SnOrder: 2, Groups: 2, Patch: 80,
		Procs: 4, Workers: 2, Grain: 8, Prio: "LDCP+BFS",
		Agg: true, AggStreams: 16, AggShards: 2, Tol: 1e-9, MaxIters: 50,
	}
	j, err := MarshalSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSpec(j)
	if err != nil {
		t.Fatal(err)
	}
	// Marshal stamps the wire-schema version on an unversioned spec.
	want := s
	want.SpecVersion = CurrentSpecVersion
	if got != want {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	if _, err := UnmarshalSpec(`{"mesh":"ball","bogus_field":1}`); err == nil {
		t.Error("unknown spec field accepted")
	}
	if _, err := UnmarshalSpec(`{broken`); err == nil {
		t.Error("broken JSON accepted")
	}
	// A spec claiming a newer schema than this build is refused with a
	// typed field error, not half-understood.
	_, err = UnmarshalSpec(fmt.Sprintf(`{"mesh":"ball","spec_version":%d}`, CurrentSpecVersion+1))
	var ve *ValidateError
	if !errors.As(err, &ve) || len(ve.Fields) != 1 || ve.Fields[0].Field != "spec_version" {
		t.Fatalf("future spec_version: err=%v", err)
	}
	// Version 0 (pre-versioning JSON) is the current schema.
	if _, err := UnmarshalSpec(`{"mesh":"ball"}`); err != nil {
		t.Fatalf("unversioned spec rejected: %v", err)
	}
}

// TestSpecValidate pins the typed field errors every entry path (CLIs,
// Job API, serve daemon) relies on to refuse a bad spec before any
// process is launched.
func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec (all defaults) rejected: %v", err)
	}
	good := Spec{Mesh: "cyclic", Cells: 300, SnOrder: 2, Patch: 80, Procs: 4,
		Workers: 2, Backend: BackendTCPLaunch, Wire: "shm", Coarse: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	fields := func(err error) map[string]string {
		t.Helper()
		var ve *ValidateError
		if !errors.As(err, &ve) {
			t.Fatalf("error is %T (%v), want *ValidateError", err, err)
		}
		m := map[string]string{}
		for _, f := range ve.Fields {
			m[f.Field] = f.Reason
		}
		return m
	}
	bad := Spec{
		SpecVersion: CurrentSpecVersion + 7,
		Mesh:        "torus",
		N:           -1,
		SnOrder:     3,
		Backend:     Backend("gpu"),
		Wire:        "carrier-pigeon",
		Prio:        "SLBD",
		Tol:         -1e-7,
		MaxIters:    -5,
	}
	got := fields(bad.Validate())
	for _, f := range []string{"spec_version", "mesh", "n", "sn", "backend", "wire", "prio", "tol", "max_iters"} {
		if _, ok := got[f]; !ok {
			t.Errorf("field %q not reported (got %v)", f, got)
		}
	}
	// Cross-field: the sequential engine cannot span OS processes.
	got = fields(Spec{Sequential: true, Backend: BackendTCPLaunch}.Validate())
	if _, ok := got["sequential"]; !ok {
		t.Errorf("sequential+tcp-launch not reported (got %v)", got)
	}
	// One FieldError alone is a usable error value too.
	if msg := (FieldError{Field: "n", Reason: "no"}).Error(); !strings.Contains(msg, `"n"`) {
		t.Errorf("FieldError message %q", msg)
	}
}

func TestParsePair(t *testing.T) {
	p, err := ParsePair("slbd+ldcp")
	if err != nil {
		t.Fatal(err)
	}
	if p.Patch.String() == p.Vertex.String() {
		t.Fatalf("pair parsed wrong: %v", p)
	}
	for _, bad := range []string{"", "SLBD", "SLBD+SLBD+SLBD", "XXX+SLBD", "SLBD+XXX"} {
		if _, err := ParsePair(bad); err == nil {
			t.Errorf("pair %q accepted", bad)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, mesh := range []string{"kobayashi", "ball", "reactor", "cyclic"} {
		spec := Spec{Mesh: mesh, N: 8, Cells: 300, SnOrder: 2, Patch: 80, Procs: 2}
		p1, d1, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", mesh, err)
		}
		p2, d2, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", mesh, err)
		}
		if p1.M.NumCells() != p2.M.NumCells() || d1.NumPatches() != d2.NumPatches() {
			t.Fatalf("%s: non-deterministic build (%d/%d cells, %d/%d patches)",
				mesh, p1.M.NumCells(), p2.M.NumCells(), d1.NumPatches(), d2.NumPatches())
		}
		d1.Place(spec.Procs)
		d2.Place(spec.Procs)
		for p := range d1.Owner {
			if d1.Owner[p] != d2.Owner[p] {
				t.Fatalf("%s: placement differs at patch %d", mesh, p)
			}
		}
	}
	if _, _, err := Build(Spec{Mesh: "torus"}); err == nil {
		t.Error("unknown mesh kind accepted")
	}
}

func TestSolverOptionsMapping(t *testing.T) {
	spec := Spec{Mesh: "kobayashi", Procs: 3, Workers: 2, Safra: true, ReuseOff: true,
		Agg: true, AggStreams: 9, AggShards: 2, AggFlushMicro: 300}
	opts, err := SolverOptions(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Procs != 3 || !opts.Aggregation.Enabled || opts.Aggregation.MaxBatchStreams != 9 {
		t.Fatalf("options mapping broken: %+v", opts)
	}
	if opts.Aggregation.FlushInterval != 300*time.Microsecond {
		t.Fatalf("flush interval = %v", opts.Aggregation.FlushInterval)
	}
	if opts.Termination.String() != "safra" {
		t.Fatalf("termination = %v", opts.Termination)
	}
	if _, err := SolverOptions(Spec{Prio: "junk"}, nil); err == nil {
		t.Error("bad priority pair accepted")
	}
}

func TestNodeEnv(t *testing.T) {
	t.Setenv(EnvRank, "")
	if _, _, ok, _ := NodeEnv(); ok {
		t.Fatal("NodeEnv claims node mode without rank")
	}
	spec, _ := MarshalSpec(Spec{Mesh: "kobayashi", N: 8, Procs: 2})
	t.Setenv(EnvRank, "1")
	t.Setenv(EnvSpec, spec)
	t.Setenv(EnvRendezvous, "127.0.0.1:9")
	t.Setenv(EnvCluster, "c")
	t.Setenv(EnvVerify, "1")
	got, o, ok, err := NodeEnv()
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if o.Rank != 1 || o.Rendezvous != "127.0.0.1:9" || o.Cluster != "c" || !o.Verify {
		t.Fatalf("options: %+v", o)
	}
	if got.Mesh != "kobayashi" || got.N != 8 {
		t.Fatalf("spec: %+v", got)
	}
	t.Setenv(EnvRank, "zzz")
	if _, _, ok, err := NodeEnv(); !ok || err == nil {
		t.Fatal("bad rank not rejected")
	}
	t.Setenv(EnvRank, "1")
	t.Setenv(EnvRendezvous, "")
	if _, _, _, err := NodeEnv(); err == nil {
		t.Fatal("missing rendezvous not rejected")
	}
}

// TestRunOnCluster runs a 2-rank in-process cluster through RunOn over
// real TCP: flux hashes must agree, cluster stats must be symmetric,
// and rank 0's verify must pass.
func TestRunOnCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster solve skipped in -short mode")
	}
	spec := Spec{Mesh: "kobayashi", N: 8, SnOrder: 2, Scatter: true,
		Procs: 2, Workers: 2, Grain: 32, Agg: true, Tol: 1e-8}
	cluster := fmt.Sprintf("runon-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*NodeResult, 2)
	errs := make([]error, 2)
	logs := make([]bytes.Buffer, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(),
			})
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = RunOn(spec, tr, NodeOptions{
				Rank: r, Verify: r == 0, Log: &logs[r],
			})
			if errs[r] != nil {
				tr.Abort()
			}
			tr.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, logs[r].String())
		}
	}
	if results[0].FluxHash != results[1].FluxHash {
		t.Fatalf("flux hashes differ: %s vs %s", results[0].FluxHash, results[1].FluxHash)
	}
	if !results[0].Verified {
		t.Fatal("rank 0 not verified")
	}
	if results[0].Cluster != results[1].Cluster {
		t.Fatalf("cluster stats differ: %+v vs %+v", results[0].Cluster, results[1].Cluster)
	}
	if results[0].Cluster.Frames == 0 || results[0].Cluster.WireBytes == 0 {
		t.Fatalf("no wire traffic recorded: %+v", results[0].Cluster)
	}
	if !strings.Contains(logs[0].String(), "fluxhash=") {
		t.Fatalf("rank 0 log missing fluxhash line:\n%s", logs[0].String())
	}
}

// TestRunOnClusterCoarseStats is the regression test for the coarse
// cluster-stat gather: with Coarse on, each rank records clusters only
// for its own programs, so the cluster-wide CoarseClusters counter must
// be the sum over ranks (strictly above any single rank's share) and —
// like the other gathered counters — identical on every rank. The flux
// must still verify against the serial reference, pinning that the
// allgathered cluster lists produced the same coarse graph everywhere.
func TestRunOnClusterCoarseStats(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster solve skipped in -short mode")
	}
	spec := Spec{Mesh: "kobayashi", N: 8, SnOrder: 2, Scatter: true,
		Procs: 2, Workers: 2, Grain: 32, Coarse: true, Tol: 1e-8}
	cluster := fmt.Sprintf("coarse-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*NodeResult, 2)
	errs := make([]error, 2)
	logs := make([]bytes.Buffer, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(),
			})
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = RunOn(spec, tr, NodeOptions{
				Rank: r, Verify: r == 0, Log: &logs[r],
			})
			if errs[r] != nil {
				tr.Abort()
			}
			tr.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, logs[r].String())
		}
	}
	if results[0].FluxHash != results[1].FluxHash {
		t.Fatalf("flux hashes differ: %s vs %s", results[0].FluxHash, results[1].FluxHash)
	}
	if !results[0].Verified {
		t.Fatal("rank 0 not verified")
	}
	if results[0].Cluster != results[1].Cluster {
		t.Fatalf("cluster stats differ: %+v vs %+v", results[0].Cluster, results[1].Cluster)
	}
	sum := results[0].Stats.CoarseClusters + results[1].Stats.CoarseClusters
	got := results[0].Cluster.CoarseClusters
	if got != sum || sum == 0 {
		t.Fatalf("cluster-wide CoarseClusters = %d, want per-rank sum %d (ranks: %d + %d)",
			got, sum, results[0].Stats.CoarseClusters, results[1].Stats.CoarseClusters)
	}
	for r := 0; r < 2; r++ {
		if share := results[r].Stats.CoarseClusters; share == 0 || share >= got {
			t.Fatalf("rank %d recorded %d clusters, want a strict share of the %d total", r, share, got)
		}
	}
	if !results[0].Stats.Coarse {
		t.Fatal("final sweep did not run on the coarse graph")
	}
}

// TestRunOnSingleProcess covers the all-local path: RunOn over an
// explicit in-memory transport needs no exchange and reports local
// stats as cluster stats.
func TestRunOnSingleProcess(t *testing.T) {
	spec := Spec{Mesh: "kobayashi", N: 8, SnOrder: 2, Procs: 2, Workers: 2, Agg: true}
	tr, err := comm.NewTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	res, err := RunOn(spec, tr, NodeOptions{Rank: 0, Verify: true, Log: new(bytes.Buffer)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.FluxHash == "" {
		t.Fatalf("result: %+v", res)
	}
	if res.Cluster.RemoteStreams == 0 {
		t.Fatalf("no remote streams recorded across 2 in-process ranks: %+v", res.Cluster)
	}
}

func TestFluxHashDistinguishesBits(t *testing.T) {
	a := [][]float64{{1, 2, 3}}
	b := [][]float64{{1, 2, 3.0000000000000004}} // one ulp away
	if FluxHash(a) == FluxHash(b) {
		t.Fatal("hash ignores bit differences")
	}
	if FluxHash(a) != FluxHash([][]float64{{1, 2, 3}}) {
		t.Fatal("hash not deterministic")
	}
}
