package nodespec

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/netcomm"
	"jsweep/internal/obs"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// NodeOptions places one rank of a cluster solve.
type NodeOptions struct {
	// Rank is this node's rank; the world size comes from Spec.Procs.
	Rank int
	// Rendezvous is the host:port of the launch's rendezvous service.
	Rendezvous string
	// Cluster is the launch-scoped cluster id.
	Cluster string
	// Timeout bounds the cluster bring-up (default 60s).
	Timeout time.Duration
	// Verify cross-checks the converged flux against the serial
	// Reference in this process (bitwise on structured/cyclic meshes,
	// 1e-12 relative on unstructured — the golden-test strictness).
	Verify bool
	// Log receives human-readable progress lines (nil = discard).
	Log io.Writer
	// Progress, when non-nil, receives one event per source iteration
	// (on the solve goroutine — a slow callback slows the solve).
	Progress func(Progress)
	// Tracer, when non-nil, records the rank's solve phases (build,
	// per-iteration source/sweep/residual spans); the finished
	// NodeResult carries its events as Trace.
	Tracer *obs.Tracer
}

// Progress is one source-iteration event: the iteration outcome plus
// the executed sweep's statistics.
type Progress struct {
	transport.Progress
	// Sweep is the solver's statistics for the iteration's sweep.
	Sweep sweep.SweepStats
}

// ClusterStats sums solve-wide message costs over all ranks (gathered in
// the final collective, which doubles as the shutdown barrier).
type ClusterStats struct {
	// Messages / BytesSent count every transport message and payload byte
	// each rank sent over the whole solve (both lanes — streams, control,
	// collectives), from the endpoint counters, so they share the
	// whole-solve scope of Frames/WireBytes regardless of session reuse.
	Messages, BytesSent int64
	// RemoteStreams / BatchesSent sum the runtime session counters (the
	// persistent session's cumulative view; with reuse off, the last
	// sweep's round only).
	RemoteStreams, BatchesSent int64
	// Frames / WireBytes sum the socket transport's frame counts and
	// on-wire bytes (headers included) of every rank; 0 for in-memory
	// solves.
	Frames, WireBytes int64
	// FastPairs counts the directed rank pairs connected over a
	// same-host fast path (shared-memory rings or Unix-domain sockets);
	// each co-located pair contributes 2 (one per direction).
	FastPairs int64
	// ShmPairs counts the subset of FastPairs riding shared-memory
	// rings (same directed-pair convention).
	ShmPairs int64
	// DegradedPairs counts the directed pairs wire=auto settled below
	// its aim for (ring handshake failed, or an unbindable/undialable
	// Unix socket forced TCP between co-located ranks); 0 for forced
	// wire modes.
	DegradedPairs int64
	// CoarseClusters counts the vertex clusters recorded across all ranks
	// during a UseCoarse recording sweep (0 without coarse mode). Each
	// rank records only its own programs' clusters, so unlike the solver's
	// per-rank stat this is the cluster-wide coarse-graph size.
	CoarseClusters int64
}

// NodeResult is one rank's view of a finished cluster solve.
type NodeResult struct {
	// Result is the converged solution (every rank holds the full flux).
	Result *transport.Result
	// Balance is the per-group neutron balance of the converged flux
	// (production vs absorption + leakage), computed while the problem
	// is live so callers need not rebuild it.
	Balance []transport.BalanceReport
	// Stats is this rank's solver statistics for the last sweep/session.
	Stats sweep.SweepStats
	// Cluster sums message costs across all ranks.
	Cluster ClusterStats
	// FluxHash is a SHA-256 over the flux bit pattern; equal hashes on
	// every rank certify bitwise agreement across OS processes.
	FluxHash string
	// Verified is set when Verify ran and passed.
	Verified bool
	// Trace holds the solve's span events, oldest first, when the run
	// was traced (NodeOptions.Tracer non-nil); nil otherwise.
	Trace []obs.Event
	// Wall is the solve wall time on this rank.
	Wall time.Duration
}

// Machine-readable markers in a node's log output. The launcher scrapes
// them from the node processes' stdout (the lines are emitted as
// "rank=N <marker>..."), so emitter (logf below) and parser
// (LaunchLocal's scanner) must share these exact strings.
const (
	// fluxHashMarker precedes the flux bit-pattern hash.
	fluxHashMarker = "fluxhash="
	// verifyOKMarker flags a passed serial-reference verification.
	verifyOKMarker = "verify=OK"
)

// FluxHash hashes the exact bit pattern of a [group][cell] flux.
func FluxHash(phi [][]float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, g := range phi {
		for _, v := range g {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// Run joins the TCP cluster as one rank, builds the spec's problem,
// drives the full source iteration across the cluster, and returns this
// rank's result. On success the transport closes cleanly (collective
// drain); on error it aborts instead, so peers blocked in a collective
// fail fast rather than waiting on a rank that quietly left.
func Run(spec Spec, o NodeOptions) (*NodeResult, error) {
	return RunCtx(context.Background(), spec, o)
}

// RunCtx is Run with cooperative cancellation: cancelling the context
// aborts this rank's transport, which unblocks its own master loop and
// pending collectives locally AND propagates as a transport failure to
// every peer — a cancelled rank never leaves the rest of the cluster
// waiting in a collective.
func RunCtx(ctx context.Context, spec Spec, o NodeOptions) (*NodeResult, error) {
	spec = spec.withDefaults()
	wire, err := netcomm.ParseWire(spec.Wire)
	if err != nil {
		return nil, err
	}
	tr, err := netcomm.JoinCtx(ctx, netcomm.Options{
		Cluster:    o.Cluster,
		Rank:       o.Rank,
		World:      spec.Procs,
		Rendezvous: o.Rendezvous,
		Wire:       wire,
		Log:        o.Log,
		Timeout:    o.Timeout,
	})
	if err != nil {
		return nil, err
	}
	// Cancellation must unblock collectives (flux exchange, stats
	// gather), which park in RecvOOB with no context of their own:
	// abort the transport the moment the context dies.
	stop := context.AfterFunc(ctx, tr.Abort)
	defer stop()
	res, err := RunOnCtx(ctx, spec, tr, o)
	if err != nil {
		tr.Abort()
	}
	tr.Close()
	if err != nil {
		// The context's cause beats the derived transport failure.
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("nodespec: rank %d solve cancelled: %w", o.Rank, cerr)
		}
	}
	return res, err
}

// RunOn drives one rank's solve on an already-joined transport (Run's
// core, also used by the in-process benchmarks and tests). The caller
// owns the transport; RunOn runs a final collective before returning, so
// closing right after is safe on every rank. A nil transport runs a
// plain single-process solve on the solver's own internal transport.
func RunOn(spec Spec, tr comm.Transport, o NodeOptions) (*NodeResult, error) {
	return RunOnCtx(context.Background(), spec, tr, o)
}

// RunOnCtx is RunOn with cooperative cancellation. The context threads
// through the source iteration into the runtime's master loops; the
// caller, as the transport's owner, is responsible for aborting the
// transport on cancellation if collectives must unblock too (RunCtx and
// jsweep.Job do).
func RunOnCtx(ctx context.Context, spec Spec, tr comm.Transport, o NodeOptions) (*NodeResult, error) {
	spec = spec.withDefaults()
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, "rank=%d "+format+"\n", append([]any{o.Rank}, args...)...)
		}
	}
	tBuild := time.Now()
	prob, d, err := Build(spec)
	if err != nil {
		return nil, err
	}
	opts, err := SolverOptions(spec, tr)
	if err != nil {
		return nil, err
	}
	logf("mesh=%s cells=%d patches=%d angles=%d groups=%d world=%d",
		spec.Mesh, prob.M.NumCells(), d.NumPatches(), prob.Quad.NumAngles(), prob.Groups, spec.Procs)
	s, err := sweep.NewSolver(prob, d, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if o.Tracer != nil {
		o.Tracer.Emit(obs.Event{Name: "node.build", Iter: 0, Dur: time.Since(tBuild),
			Detail: fmt.Sprintf("mesh=%s rank=%d", spec.Mesh, o.Rank)})
	}
	t0 := time.Now()
	cfg := IterConfig(spec)
	cfg.Tracer = o.Tracer
	if o.Progress != nil {
		cfg.Progress = func(p transport.Progress) {
			o.Progress(Progress{Progress: p, Sweep: s.LastStats()})
		}
	}
	res, err := transport.SourceIterateCtx(ctx, prob, s, cfg)
	if err != nil {
		return nil, err
	}
	nr := &NodeResult{
		Result:   res,
		Balance:  make([]transport.BalanceReport, prob.Groups),
		Stats:    s.LastStats(),
		FluxHash: FluxHash(res.Phi),
		Wall:     time.Since(t0),
	}
	if o.Tracer != nil {
		o.Tracer.Emit(obs.Event{Name: "node.solved", Iter: res.Iterations, Dur: nr.Wall,
			Detail: "hash=" + nr.FluxHash})
		nr.Trace = o.Tracer.Events()
	}
	for g := 0; g < prob.Groups; g++ {
		nr.Balance[g] = prob.GroupBalance(res.Phi, g)
	}
	logf("converged=%v iterations=%d residual=%.3e wall=%.3fs",
		res.Converged, res.Iterations, res.Residual, nr.Wall.Seconds())
	logf("%s%s", fluxHashMarker, nr.FluxHash)

	// The (possibly long) serial-reference verify runs BEFORE the final
	// collective: the stats gather below doubles as the shutdown
	// barrier, so peers wait for a verifying rank 0 inside an untimed
	// RecvOOB instead of stalling in Close until its timeout forces the
	// connections shut. On verify failure the gather still runs first —
	// skipping it would leave every other rank blocked in the barrier.
	var verifyErr error
	if o.Verify {
		if verifyErr = verifyAgainstReference(spec, prob, res); verifyErr == nil {
			nr.Verified = true
		}
	}

	// Gather cluster-wide stats; no rank tears its connections down
	// while another still needs them. The exchange must run on the
	// solver's own Collective: a skewed peer's stats payload may already
	// sit in its stash.
	if err := gatherClusterStats(tr, s.Collective(), nr); err != nil {
		if verifyErr != nil {
			return nil, verifyErr
		}
		return nil, err
	}
	if verifyErr != nil {
		return nil, verifyErr
	}
	logf("cluster: messages=%d bytes=%d remoteStreams=%d batches=%d frames=%d wireBytes=%d fastPairs=%d shmPairs=%d degradedPairs=%d coarseClusters=%d",
		nr.Cluster.Messages, nr.Cluster.BytesSent, nr.Cluster.RemoteStreams,
		nr.Cluster.BatchesSent, nr.Cluster.Frames, nr.Cluster.WireBytes, nr.Cluster.FastPairs,
		nr.Cluster.ShmPairs, nr.Cluster.DegradedPairs, nr.Cluster.CoarseClusters)
	if nr.Verified {
		logf("%s (serial reference parity)", verifyOKMarker)
	}
	return nr, nil
}

// LocalClusterStats folds one rank's counters into a ClusterStats: the
// transport's endpoint totals (nil for a single-process solve on the
// solver's internal transport) plus the session-scoped sweep counters.
// Single-rank callers (the serve daemon's full jobs) use it directly;
// cluster ranks exchange the result via gatherClusterStats.
func LocalClusterStats(tr comm.Transport, st sweep.SweepStats) ClusterStats {
	return localClusterStats(tr, st)
}

// localClusterStats folds one rank's counters into the exchange payload.
func localClusterStats(tr comm.Transport, st sweep.SweepStats) ClusterStats {
	cum := st.Cumulative
	if cum.RoundsRun == 0 {
		// Reuse-off sessions have no cumulative view; fall back to the
		// last round for the session-scoped counters.
		cum = st.Runtime
	}
	cs := ClusterStats{
		RemoteStreams:  cum.RemoteStreams,
		BatchesSent:    cum.BatchesSent,
		CoarseClusters: st.CoarseClusters,
	}
	if tr == nil {
		// Single-process solve on the solver's internal transport: no
		// endpoint counters to read.
		return cs
	}
	// Message/byte totals come from the endpoint counters so they cover
	// the whole solve (matching the wire-stat scope) on every reuse mode.
	for _, r := range tr.LocalRanks() {
		if ep := tr.Endpoint(r); ep != nil {
			sent, _, bytesOut, _ := ep.Counters()
			cs.Messages += sent
			cs.BytesSent += bytesOut
		}
	}
	if nt, ok := tr.(*netcomm.Transport); ok {
		ws := nt.WireStats()
		cs.Frames = ws.FramesSent
		cs.WireBytes = ws.BytesOut
		cs.FastPairs = int64(nt.FastPeers())
		cs.ShmPairs = int64(nt.ShmPeers())
		cs.DegradedPairs = int64(nt.DegradedPairs())
	}
	return cs
}

// gatherClusterStats allgathers and sums every rank's counters.
func gatherClusterStats(tr comm.Transport, coll *comm.Collective, nr *NodeResult) error {
	if coll == nil {
		// Single-process (or single-rank) solve: local stats are global.
		nr.Cluster = localClusterStats(tr, nr.Stats)
		return nil
	}
	mine := localClusterStats(tr, nr.Stats)
	payload := make([]byte, 0, 10*8)
	for _, v := range []int64{mine.Messages, mine.BytesSent, mine.RemoteStreams, mine.BatchesSent, mine.Frames, mine.WireBytes, mine.FastPairs, mine.ShmPairs, mine.DegradedPairs, mine.CoarseClusters} {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(v))
	}
	parts, err := coll.AllExchange(payload)
	if err != nil {
		return fmt.Errorf("nodespec: cluster stats exchange: %w", err)
	}
	var sum ClusterStats
	for rank, part := range parts {
		if len(part) != 10*8 {
			return fmt.Errorf("nodespec: rank %d sent %d-byte stats payload", rank, len(part))
		}
		sum.Messages += int64(binary.LittleEndian.Uint64(part[0:]))
		sum.BytesSent += int64(binary.LittleEndian.Uint64(part[8:]))
		sum.RemoteStreams += int64(binary.LittleEndian.Uint64(part[16:]))
		sum.BatchesSent += int64(binary.LittleEndian.Uint64(part[24:]))
		sum.Frames += int64(binary.LittleEndian.Uint64(part[32:]))
		sum.WireBytes += int64(binary.LittleEndian.Uint64(part[40:]))
		sum.FastPairs += int64(binary.LittleEndian.Uint64(part[48:]))
		sum.ShmPairs += int64(binary.LittleEndian.Uint64(part[56:]))
		sum.DegradedPairs += int64(binary.LittleEndian.Uint64(part[64:]))
		sum.CoarseClusters += int64(binary.LittleEndian.Uint64(part[72:]))
	}
	nr.Cluster = sum
	return nil
}

// Verify solves the same spec on the serial Reference and compares the
// converged result (the in-process variant of NodeOptions.Verify; the
// serve daemon uses it for submissions that ask for verification).
func Verify(spec Spec, prob *transport.Problem, res *transport.Result) error {
	return verifyAgainstReference(spec, prob, res)
}

// verifyAgainstReference solves the same spec on the serial Reference
// and compares: bitwise on structured and cyclic meshes, 1e-12 relative
// on unstructured (the reference accumulates patch boundaries in a
// different global order there — same strictness as the golden tests).
func verifyAgainstReference(spec Spec, prob *transport.Problem, res *transport.Result) error {
	ref, err := sweep.NewReference(prob)
	if err != nil {
		return err
	}
	want, err := transport.SourceIterate(prob, ref, IterConfig(spec))
	if err != nil {
		return fmt.Errorf("nodespec: reference solve: %w", err)
	}
	if want.Iterations != res.Iterations {
		return fmt.Errorf("nodespec: verify FAILED: %d iterations vs reference %d", res.Iterations, want.Iterations)
	}
	bitwise := spec.Mesh == "kobayashi" || spec.Mesh == "cyclic"
	for g := range want.Phi {
		for c := range want.Phi[g] {
			w, h := want.Phi[g][c], res.Phi[g][c]
			if bitwise {
				if w != h {
					return fmt.Errorf("nodespec: verify FAILED: group %d cell %d: %v != %v (bitwise)", g, c, h, w)
				}
				continue
			}
			denom := math.Abs(w)
			if denom < 1 {
				denom = 1
			}
			if math.Abs(h-w)/denom > 1e-12 {
				return fmt.Errorf("nodespec: verify FAILED: group %d cell %d: %v vs %v", g, c, h, w)
			}
		}
	}
	return nil
}
