package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/priority"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// CoarseAblation measures the §V-E claim on the real threaded runtime: the
// coarsened graph cuts scheduling events (Compute calls) by roughly an
// order of magnitude and speeds up post-first sweeps; building the CG
// costs less than one DAG sweep.
func CoarseAblation(f Fidelity, w io.Writer) ([]Point, error) {
	n := 24
	order := 2
	if f == Paper {
		n = 48
		order = 4
	}
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: n, SnOrder: order, Scheme: transport.Diamond})
	if err != nil {
		return nil, err
	}
	d, err := m.BlockDecompose(8, 8, 8)
	if err != nil {
		return nil, err
	}
	procs := 2
	workers := maxI(1, runtime.NumCPU()/procs-1)
	opts := sweep.Options{
		Procs: procs, Workers: workers, Grain: 64, UseCoarse: true,
		Pair: priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
	}
	s, err := sweep.NewSolver(prob, d, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	q := flatSource(prob)

	t0 := time.Now()
	if _, err := s.Sweep(q); err != nil { // fine sweep + CG build
		return nil, err
	}
	fineWall := time.Since(t0).Seconds()
	fineCalls := s.LastStats().ComputeCalls

	t1 := time.Now()
	if _, err := s.Sweep(q); err != nil { // coarse sweep
		return nil, err
	}
	coarseWall := time.Since(t1).Seconds()
	coarseCalls := s.LastStats().ComputeCalls

	st := s.CoarseGraph().Stats(nil)
	fmt.Fprintf(w, "Coarsened-graph ablation (%s): Kobayashi-%d S%d, patch 8³, grain 64, %dp×%dw\n",
		f, n, order, procs, workers)
	fmt.Fprintf(w, "  %-28s %12s %12s %10s\n", "", "DAG sweep", "CG sweep", "ratio")
	fmt.Fprintf(w, "  %-28s %12d %12d %9.1fx\n", "compute calls (sched events)", fineCalls, coarseCalls,
		float64(fineCalls)/float64(coarseCalls))
	fmt.Fprintf(w, "  %-28s %12.4f %12.4f %9.1fx\n", "wall time [s] (incl CG build)", fineWall, coarseWall,
		fineWall/coarseWall)
	fmt.Fprintf(w, "  coarse graph: %d CV, %d CE\n", st.CoarseVertices, st.CoarseEdges)
	return []Point{
		{Series: "compute-calls-ratio", X: float64(n), Value: float64(fineCalls) / float64(coarseCalls)},
		{Series: "wall-ratio", X: float64(n), Value: fineWall / coarseWall},
	}, nil
}

// RealRuntime validates the threaded runtime on the host: a small
// Kobayashi sweep across process/worker topologies, reporting wall time
// and runtime statistics. (Not a paper figure — the correctness-scale
// companion to the simulated experiments.)
func RealRuntime(f Fidelity, w io.Writer) ([]Point, error) {
	n := 24
	if f == Paper {
		n = 48
	}
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: n, SnOrder: 2, Scheme: transport.Diamond})
	if err != nil {
		return nil, err
	}
	d, err := m.BlockDecompose(8, 8, 8)
	if err != nil {
		return nil, err
	}
	q := flatSource(prob)
	topos := [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 4}}
	if runtime.NumCPU() >= 16 {
		topos = append(topos, [2]int{4, 3})
	}
	var pts []Point
	fmt.Fprintf(w, "Real runtime scaling (%s): Kobayashi-%d S2, patch 8³ (host has %d CPUs)\n",
		f, n, runtime.NumCPU())
	fmt.Fprintf(w, "  %8s %8s %12s %10s %14s\n", "procs", "workers", "time[s]", "cycles", "remote streams")
	for _, tp := range topos {
		s, err := sweep.NewSolver(prob, d, sweep.Options{
			Procs: tp[0], Workers: tp[1], Grain: 64,
			Pair: priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
		})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := s.Sweep(q); err != nil {
			s.Close()
			return nil, err
		}
		wall := time.Since(t0).Seconds()
		st := s.LastStats()
		s.Close()
		fmt.Fprintf(w, "  %8d %8d %12.4f %10d %14d\n",
			tp[0], tp[1], wall, st.Runtime.Cycles, st.Runtime.RemoteStreams)
		pts = append(pts, Point{Series: "real", X: float64(tp[0] * tp[1]), Value: wall})
	}
	return pts, nil
}

// flatSource evaluates the emission density of a problem's fixed sources
// with zero flux (one sweep's input).
func flatSource(prob *transport.Problem) [][]float64 {
	q := prob.NewFlux()
	zero := prob.NewFlux()
	scratch := make([]float64, prob.Groups)
	for c := 0; c < prob.M.NumCells(); c++ {
		prob.EmissionDensity(mesh.CellID(c), zero, scratch)
		for g := 0; g < prob.Groups; g++ {
			q[g][c] = scratch[g]
		}
	}
	return q
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
