package bench

import (
	"strings"
	"testing"

	"jsweep/internal/obs"
)

// Shape: the overhead experiment reports both legs' per-iteration times,
// the overhead ratio and its noise bound, prints a verdict against the
// 1% budget, and leaves the process-default registry exactly as it
// found it (the bitwise flux identity between legs is asserted inside
// the experiment itself).
func TestObsOverheadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs paired full solves")
	}
	before := obs.Default()
	var sb strings.Builder
	e, ok := Find("obs")
	if !ok {
		t.Fatal("experiment obs not registered")
	}
	pts, err := e.Run(Quick, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Default() != before {
		t.Fatal("experiment did not restore the default registry")
	}
	noop := series(pts, "kobayashi-16/noop")
	instr := series(pts, "kobayashi-16/instrumented")
	over := series(pts, "kobayashi-16/overhead")
	noise := series(pts, "kobayashi-16/noise")
	if len(noop) != 1 || len(instr) != 1 || len(over) != 1 || len(noise) != 1 {
		t.Fatalf("series shapes: noop=%d instr=%d overhead=%d noise=%d",
			len(noop), len(instr), len(over), len(noise))
	}
	if noop[0].Value <= 0 || instr[0].Value <= 0 {
		t.Fatalf("non-positive per-iteration times: noop=%g instr=%g", noop[0].Value, instr[0].Value)
	}
	if noise[0].Value < 0 {
		t.Fatalf("negative noise bound %g", noise[0].Value)
	}
	if !strings.Contains(sb.String(), "1% budget") {
		t.Fatalf("output carries no budget verdict:\n%s", sb.String())
	}
}
