package bench

import (
	"fmt"
	"io"
	"math"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/priority"
	"jsweep/internal/simcluster"
)

// Paper cell counts for the unstructured meshes (§VI-B).
const (
	reactorCells   = 64479
	ballSmallCells = 482248
	ballLargeCells = 173197768
)

// coarseBall builds a patch-granular coarse ball mesh: one coarse cell per
// patch (DESIGN.md substitution — large meshes are synthesized at patch
// granularity).
func coarseBall(totalCells int, patchSize int) (*mesh.Unstructured, error) {
	patches := totalCells / patchSize
	if patches < 8 {
		patches = 8
	}
	return meshgen.BallWithCells(patches, 1.0)
}

// coarseReactor is the reactor-core equivalent. The cylinder generator
// cannot resolve very small patch counts (its lattice floor is a few
// hundred tets); below that a box blob of the right patch count stands in
// — at patch granularity only the irregular tet adjacency matters.
func coarseReactor(totalCells int, patchSize int) (*mesh.Unstructured, error) {
	patches := totalCells / patchSize
	if patches < 8 {
		patches = 8
	}
	if patches < 400 {
		side := int(math.Cbrt(float64(patches) / 6))
		if side < 1 {
			side = 1
		}
		nz := (patches + 6*side*side - 1) / (6 * side * side)
		return meshgen.Box(side, side, nz, geom.Vec3{}, geom.Vec3{X: float64(side), Y: float64(side), Z: float64(nz)})
	}
	return meshgen.ReactorWithCells(patches, 1.0, 1.5)
}

// coarseWorkload wraps simcluster.UnstructuredWorkload, deriving the
// per-patch cell count from the coarse mesh that was actually built (the
// generators overshoot small patch counts; total work must stay equal to
// totalCells regardless).
func coarseWorkload(m *mesh.Unstructured, totalCells, procs, angles, groups int) (*simcluster.Workload, error) {
	per := int64(math.Round(float64(totalCells) / float64(m.NumCells())))
	if per < 1 {
		per = 1
	}
	return simcluster.UnstructuredWorkload(m, per, procs, angles, groups)
}

// unstructuredCfg is the paper's JSNT-U default: SLBD+SLBD.
func unstructuredCfg(w *simcluster.Workload, grain int64, pair priority.Pair) simcluster.Config {
	return simcluster.Config{
		Workers:   workersPerProc,
		Grain:     grain,
		PatchPrio: patchPrioFor(w, pair.Patch),
		EmitDelay: emitDelayFor(pair.Vertex),
	}
}

var slbdPair = priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD}

// Fig13a reproduces Fig. 13a: JSNT-U runtime vs patch size (left) and vs
// cluster grain (right) on the reactor mesh at fixed cores. Patch size
// shows the fall-then-rise of §VI-B1; grain falls then flattens (available
// parallelism limits the real grain).
func Fig13a(f Fidelity, w io.Writer) ([]Point, error) {
	totalCells := reactorCells
	angles := 24
	groups := 4
	cores := 384
	patchSizes := []int{100, 500, 1000, 1500, 2000, 2500}
	grains := []int64{1, 2, 4, 8, 16, 32, 64}
	if f == Quick {
		angles = 8
		groups = 1
		patchSizes = []int{100, 500, 2500}
		grains = []int64{1, 8, 64}
	}
	cm := simcluster.DefaultCostModel(groups)
	var pts []Point
	// Left: patch-size sweep at grain 64.
	for _, ps := range patchSizes {
		m, err := coarseReactor(totalCells, ps)
		if err != nil {
			return nil, err
		}
		wl, err := coarseWorkload(m, totalCells, procsFor(cores), angles, groups)
		if err != nil {
			return nil, err
		}
		res, err := simcluster.Simulate(wl, unstructuredCfg(wl, 64, slbdPair), cm)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{Series: "patch-size", X: float64(ps), Value: res.Makespan})
	}
	// Right: grain sweep at patch size 500.
	m, err := coarseReactor(totalCells, 500)
	if err != nil {
		return nil, err
	}
	wl, err := coarseWorkload(m, totalCells, procsFor(cores), angles, groups)
	if err != nil {
		return nil, err
	}
	for _, grain := range grains {
		res, err := simcluster.Simulate(wl, unstructuredCfg(wl, grain, slbdPair), cm)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{Series: "cluster-grain", X: float64(grain), Value: res.Makespan})
	}
	fmt.Fprintf(w, "Fig 13a (%s): reactor %d cells, %d angles, %d groups, %d cores\n",
		f, totalCells, angles, groups, cores)
	printSeries(w, "x", "time[s]", pts)
	return pts, nil
}

// Fig13b reproduces Fig. 13b: priority strategy pairs on the reactor mesh
// across core counts — differences are visible but smaller than on
// structured meshes (§VI-B1).
func Fig13b(f Fidelity, w io.Writer) ([]Point, error) {
	totalCells := reactorCells
	angles := 24
	groups := 4
	coresList := []int{384, 768, 1536, 3072, 6144}
	if f == Quick {
		totalCells = 16000
		angles = 8
		groups = 1
		coresList = []int{384, 1536, 6144}
	}
	pairs := []priority.Pair{
		{Patch: priority.BFS, Vertex: priority.BFS},
		{Patch: priority.BFS, Vertex: priority.SLBD},
		{Patch: priority.SLBD, Vertex: priority.SLBD},
		{Patch: priority.SLBD, Vertex: priority.BFS},
	}
	names := []string{"BFS", "BFS+SLBD", "SLBD", "SLBD+BFS"}
	cm := simcluster.DefaultCostModel(groups)
	m, err := coarseReactor(totalCells, 500)
	if err != nil {
		return nil, err
	}
	var pts []Point
	for _, cores := range coresList {
		wl, err := coarseWorkload(m, totalCells, procsFor(cores), angles, groups)
		if err != nil {
			return nil, err
		}
		for i, pair := range pairs {
			res, err := simcluster.Simulate(wl, unstructuredCfg(wl, 64, pair), cm)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Point{Series: names[i], X: float64(cores), Value: res.Makespan})
		}
	}
	fmt.Fprintf(w, "Fig 13b (%s): reactor %d cells, %d angles, %d groups\n", f, totalCells, angles, groups)
	printSeries(w, "cores", "time[s]", pts)
	return pts, nil
}

// ballScaling runs the ball strong-scaling series shared by Fig. 14a/b.
func ballScaling(totalCells, patchSize int, coresList []int, angles, groups int, w io.Writer) ([]Point, error) {
	m, err := coarseBall(totalCells, patchSize)
	if err != nil {
		return nil, err
	}
	cm := simcluster.DefaultCostModel(groups)
	// The paper's grain-64 default is 1/8 of its 500-cell patches; scale
	// the grain with patch size to keep the same pipelining depth.
	grain := int64(patchSize / 8)
	if grain < 64 {
		grain = 64
	}
	var pts []Point
	for _, cores := range coresList {
		wl, err := coarseWorkload(m, totalCells, procsFor(cores), angles, groups)
		if err != nil {
			return nil, err
		}
		res, err := simcluster.Simulate(wl, unstructuredCfg(wl, grain, slbdPair), cm)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{Series: "ball", X: float64(cores), Value: res.Makespan})
	}
	speedupTable(w, pts)
	return pts, nil
}

// Fig14a reproduces Fig. 14a: strong scaling on the small ball (482,248
// cells; paper: 72% efficiency at 384 cores, 30% at 6,144, base 24).
func Fig14a(f Fidelity, w io.Writer) ([]Point, error) {
	totalCells := ballSmallCells
	angles := 24
	groups := 4
	coresList := []int{24, 48, 96, 192, 384, 768, 1536, 3072, 6144}
	if f == Quick {
		totalCells = 60000
		angles = 8
		groups = 1
		coresList = []int{24, 192, 1536, 6144}
	}
	fmt.Fprintf(w, "Fig 14a (%s): ball %d cells, patch 500, %d angles, %d groups\n", f, totalCells, angles, groups)
	return ballScaling(totalCells, 500, coresList, angles, groups, w)
}

// Fig14b reproduces Fig. 14b: strong scaling on the large ball (173M
// cells; paper: 9.9× speedup, 62% efficiency at 49,152 vs 3,072 cores).
func Fig14b(f Fidelity, w io.Writer) ([]Point, error) {
	totalCells := ballLargeCells
	patchSize := 500
	angles := 8
	groups := 4
	coresList := []int{3072, 6144, 12288, 24576, 49152}
	switch f {
	case Quick:
		totalCells = ballLargeCells / 64
		patchSize = 2000
		angles = 8
		groups = 1
		coresList = []int{3072, 12288, 49152}
	case Standard:
		// Patch-granular synthesis at a coarser patch size keeps the DES
		// tractable while preserving the patches-per-process trajectory.
		patchSize = 4000
	case Paper:
		angles = 24
	}
	fmt.Fprintf(w, "Fig 14b (%s): ball %d cells, patch %d, %d angles, %d groups\n", f, totalCells, patchSize, angles, groups)
	return ballScaling(totalCells, patchSize, coresList, angles, groups, w)
}

// Fig15 reproduces Fig. 15: weak scaling on reactor and ball. Each step
// multiplies cores and mesh cells by 8 (the paper's "approximate
// refinement"); efficiency = T(base)/T(step). The paper finds ~40% at
// 12,288 cores for the reactor and <20% for the ball.
func Fig15(f Fidelity, w io.Writer) ([]Point, error) {
	coresList := []int{24, 192, 1536, 12288}
	angles := 8
	groups := 4
	baseReactor := reactorCells
	baseBall := ballSmallCells / 8 // keeps the largest step tractable
	patchSize := 500
	if f == Quick {
		coresList = []int{24, 192, 1536}
		groups = 1
		baseReactor = 8000
		baseBall = 16000
		patchSize = 500
	}
	cm := simcluster.DefaultCostModel(groups)
	var pts []Point
	for mi, name := range []string{"reactor", "ball"} {
		base := baseReactor
		build := coarseReactor
		if name == "ball" {
			base = baseBall
			build = coarseBall
		}
		var baseTime float64
		for step, cores := range coresList {
			cells := base
			for s := 0; s < step; s++ {
				cells *= 8
			}
			m, err := build(cells, patchSize)
			if err != nil {
				return nil, err
			}
			wl, err := coarseWorkload(m, cells, procsFor(cores), angles, groups)
			if err != nil {
				return nil, err
			}
			res, err := simcluster.Simulate(wl, unstructuredCfg(wl, 64, slbdPair), cm)
			if err != nil {
				return nil, err
			}
			if step == 0 {
				baseTime = res.Makespan
			}
			eff := baseTime / res.Makespan
			pts = append(pts, Point{Series: name, X: float64(cores), Value: eff})
		}
		_ = mi
	}
	fmt.Fprintf(w, "Fig 15 (%s): weak scaling, ×8 cells per ×8 cores, patch %d, %d angles, %d groups\n",
		f, patchSize, angles, groups)
	printSeries(w, "cores", "efficiency", pts)
	return pts, nil
}

// Fig17b reproduces Fig. 17b: JSweep vs the JAUMIN BSP baseline on the
// small ball.
func Fig17b(f Fidelity, w io.Writer) ([]Point, error) {
	totalCells := ballSmallCells
	angles := 24
	groups := 4
	coresList := []int{384, 768, 1536, 3072, 6144}
	if f == Quick {
		totalCells = 60000
		angles = 8
		groups = 1
		coresList = []int{384, 1536, 6144}
	}
	m, err := coarseBall(totalCells, 500)
	if err != nil {
		return nil, err
	}
	cm := simcluster.DefaultCostModel(groups)
	var pts []Point
	for _, cores := range coresList {
		wl, err := coarseWorkload(m, totalCells, procsFor(cores), angles, groups)
		if err != nil {
			return nil, err
		}
		cfg := unstructuredCfg(wl, 64, slbdPair)
		dd, err := simcluster.Simulate(wl, cfg, cm)
		if err != nil {
			return nil, err
		}
		bspRes, err := simcluster.SimulateBSP(wl, cfg, cm)
		if err != nil {
			return nil, err
		}
		pts = append(pts,
			Point{Series: "JSweep", X: float64(cores), Value: dd.Makespan},
			Point{Series: "JAUMIN", X: float64(cores), Value: bspRes.Makespan},
		)
	}
	fmt.Fprintf(w, "Fig 17b (%s): ball %d cells, %d angles, %d groups — JSweep vs JAUMIN (BSP rounds)\n",
		f, totalCells, angles, groups)
	printSeries(w, "cores", "time[s]", pts)
	return pts, nil
}

// ballEfficiency computes the Table I JSweep-sphere efficiency.
func ballEfficiency(baseCores, maxCores int, cm simcluster.CostModel, f Fidelity) (float64, error) {
	totalCells := ballSmallCells
	angles := 24
	if f == Quick {
		totalCells = 60000
		angles = 8
	}
	m, err := coarseBall(totalCells, 500)
	if err != nil {
		return 0, err
	}
	run := func(cores int) (float64, error) {
		wl, err := coarseWorkload(m, totalCells, procsFor(cores), angles, 4)
		if err != nil {
			return 0, err
		}
		res, err := simcluster.Simulate(wl, unstructuredCfg(wl, 64, slbdPair), cm)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	tb, err := run(baseCores)
	if err != nil {
		return 0, err
	}
	tm, err := run(maxCores)
	if err != nil {
		return 0, err
	}
	return (tb / tm) * float64(baseCores) / float64(maxCores), nil
}
