// Package bench contains one experiment driver per table and figure of the
// paper's evaluation (§VI), each regenerating the corresponding rows or
// series. Large-scale experiments run on the simulated cluster
// (internal/simcluster); correctness-scale ablations run the real threaded
// runtime. EXPERIMENTS.md records the paper-vs-measured comparison.
package bench

import (
	"fmt"
	"io"
	"sort"

	"jsweep/internal/priority"
	"jsweep/internal/simcluster"
)

// Fidelity selects the experiment scale.
type Fidelity int

const (
	// Quick is sized for `go test -bench` (seconds per experiment). It
	// preserves each figure's qualitative shape at reduced patch and
	// angle counts.
	Quick Fidelity = iota
	// Standard is the CLI default (tens of seconds for the large runs):
	// paper-shaped patch lattices with reduced angle counts.
	Standard
	// Paper runs the full published parameters (minutes; Kobayashi-800 at
	// 320 angles is several hundred million simulated events).
	Paper
)

// ParseFidelity converts quick/standard/paper.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "standard", "":
		return Standard, nil
	case "paper", "full":
		return Paper, nil
	}
	return 0, fmt.Errorf("bench: unknown fidelity %q (quick|standard|paper)", s)
}

func (f Fidelity) String() string {
	switch f {
	case Quick:
		return "quick"
	case Paper:
		return "paper"
	default:
		return "standard"
	}
}

// Point is one datum of an experiment's output series.
type Point struct {
	// Series names the line ("JSweep", "JASMIN", "SLBD+SLBD", ...).
	Series string
	// X is the swept parameter (cores, grain, patch size...).
	X float64
	// Value is the measured quantity (seconds or efficiency).
	Value float64
}

// Experiment couples an id with its driver.
type Experiment struct {
	// ID is the index key ("fig12a", "tab1", ...).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Run executes the experiment, prints its table to w, and returns the
	// series points.
	Run func(f Fidelity, w io.Writer) ([]Point, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig9a", Title: "Fig. 9a — vertex clustering grain vs time (SnSweep-S, structured)", Run: Fig9a},
		{ID: "fig9b", Title: "Fig. 9b — priority strategies vs cores (structured)", Run: Fig9b},
		{ID: "fig12a", Title: "Fig. 12a — Kobayashi-400 strong scaling (JSNT-S)", Run: Fig12a},
		{ID: "fig12b", Title: "Fig. 12b — Kobayashi-800 strong scaling (JSNT-S)", Run: Fig12b},
		{ID: "fig13a", Title: "Fig. 13a — patch size and cluster grain (JSNT-U, reactor)", Run: Fig13a},
		{ID: "fig13b", Title: "Fig. 13b — priority strategies (JSNT-U, reactor)", Run: Fig13b},
		{ID: "fig14a", Title: "Fig. 14a — strong scaling, small ball (482k cells)", Run: Fig14a},
		{ID: "fig14b", Title: "Fig. 14b — strong scaling, large ball (173M cells)", Run: Fig14b},
		{ID: "fig15", Title: "Fig. 15 — weak scaling (reactor & ball)", Run: Fig15},
		{ID: "fig16", Title: "Fig. 16 — runtime overhead breakdown (JSNT-S)", Run: Fig16},
		{ID: "fig17a", Title: "Fig. 17a — JSweep vs JASMIN (Kobayashi-400)", Run: Fig17a},
		{ID: "fig17b", Title: "Fig. 17b — JSweep vs JAUMIN (ball)", Run: Fig17b},
		{ID: "tab1", Title: "Table I — parallel efficiency comparison with literature", Run: Table1},
		{ID: "coarse", Title: "§V-E — coarsened-graph ablation (real runtime)", Run: CoarseAblation},
		{ID: "real", Title: "validation — real threaded runtime scaling on host", Run: RealRuntime},
		{ID: "agg", Title: "§IV — message-aggregation batch-size sweep (sim + real runtime)", Run: AggregationSweep},
		{ID: "iter", Title: "§IV — persistent-session iteration throughput (reuse on/off, real runtime)", Run: IterationReuse},
		{ID: "cyclic", Title: "cyclic meshes — SCC detection + feedback-edge flux lagging (twisted rings)", Run: CyclicLagging},
		{ID: "net", Title: "transport backends — in-memory vs Unix-socket vs TCP-localhost × aggregation (real runtime)", Run: NetBackend},
		{ID: "obs", Title: "observability — metrics overhead, instrumented vs no-op registry (real runtime)", Run: ObsOverhead},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// coresPerProc mirrors the paper's Tianhe-II setup: one MPI process per
// 12-core processor, one core reserved for the master thread.
const coresPerProc = 12

// workersPerProc is the worker-thread count per process.
const workersPerProc = coresPerProc - 1

// procsFor converts a paper "cores" axis value into simulated processes.
func procsFor(cores int) int {
	p := cores / coresPerProc
	if p < 1 {
		p = 1
	}
	return p
}

// emitDelayFor maps a vertex priority strategy onto the simulator's
// emission-delay knob: SLBD pushes boundary work first (earliest
// emission); LDCP follows the critical path (intermediate); BFS floods
// levels (latest useful emission). See DESIGN.md.
func emitDelayFor(s priority.Strategy) float64 {
	switch s {
	case priority.SLBD:
		return 0.0
	case priority.LDCP:
		return 0.25
	default: // BFS
		return 0.5
	}
}

// patchPrioFor evaluates a patch strategy on every octant DAG of a
// workload and expands it to per-angle priorities.
func patchPrioFor(w *simcluster.Workload, s priority.Strategy) [][]int64 {
	perOctant := make([][]int64, len(w.Octants))
	for o, dag := range w.Octants {
		perOctant[o] = priority.PatchPriorities(s, dag)
	}
	out := make([][]int64, len(w.AngleOctant))
	for a, o := range w.AngleOctant {
		out[a] = perOctant[o]
	}
	return out
}

// printSeries renders points grouped by series as an aligned table.
func printSeries(w io.Writer, xLabel, vLabel string, pts []Point) {
	bySeries := map[string][]Point{}
	var order []string
	for _, p := range pts {
		if _, ok := bySeries[p.Series]; !ok {
			order = append(order, p.Series)
		}
		bySeries[p.Series] = append(bySeries[p.Series], p)
	}
	for _, s := range order {
		ps := bySeries[s]
		sort.Slice(ps, func(i, j int) bool { return ps[i].X < ps[j].X })
		fmt.Fprintf(w, "  series %-24s", s)
		fmt.Fprintf(w, "  %s:", xLabel)
		for _, p := range ps {
			fmt.Fprintf(w, " %g", p.X)
		}
		fmt.Fprintf(w, "\n  %-31s %s:", "", vLabel)
		for _, p := range ps {
			fmt.Fprintf(w, " %.4g", p.Value)
		}
		fmt.Fprintln(w)
	}
}

// speedupTable prints runtimes plus speedup/efficiency against the first
// (base) point of a single series.
func speedupTable(w io.Writer, pts []Point) {
	if len(pts) == 0 {
		return
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	base := pts[0]
	fmt.Fprintf(w, "  %10s %12s %10s %12s\n", "cores", "time[s]", "speedup", "efficiency")
	for _, p := range pts {
		sp := base.Value / p.Value
		eff := sp * base.X / p.X
		fmt.Fprintf(w, "  %10.0f %12.3f %10.2f %11.1f%%\n", p.X, p.Value, sp, eff*100)
	}
}
