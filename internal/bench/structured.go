package bench

import (
	"fmt"
	"io"

	"jsweep/internal/kba"
	"jsweep/internal/priority"
	"jsweep/internal/simcluster"
)

// kobaWorkload builds the simulated workload of a Kobayashi-N run with the
// paper's 20³-cell patches: an (N/20)³ patch lattice.
func kobaWorkload(n, procs, angles int) (*simcluster.Workload, error) {
	blocks := n / 20
	if blocks < 1 {
		blocks = 1
	}
	return simcluster.StructuredWorkload(blocks, blocks, blocks, 20*20*20, procs, angles, 1)
}

// slbdConfig is the paper's default configuration: SLBD+SLBD, grain 1000.
func slbdConfig(w *simcluster.Workload, grain int64) simcluster.Config {
	return simcluster.Config{
		Workers:   workersPerProc,
		Grain:     grain,
		PatchPrio: patchPrioFor(w, priority.SLBD),
		EmitDelay: emitDelayFor(priority.SLBD),
	}
}

// Fig9a reproduces Fig. 9a: SnSweep-S runtime vs vertex clustering grain.
// Paper setup: 160×160×180 cells, patch 20³, S2 (8 angles), 96 cores —
// runtime falls steeply from grain 1, bottoms out mid-range, and climbs
// again when excessive clustering defers communication.
func Fig9a(f Fidelity, w io.Writer) ([]Point, error) {
	bx, by, bz := 8, 8, 9 // 160×160×180 / 20³
	cells := int64(8000)
	grains := []int64{1, 8, 64, 256, 1024, 2048, 4096}
	angles := 8
	procs := procsFor(96)
	if f == Quick {
		bx, by, bz = 4, 4, 4
		cells = 1000
		grains = []int64{1, 8, 64, 256, 1000}
	}
	wl, err := simcluster.StructuredWorkload(bx, by, bz, cells, procs, angles, 1)
	if err != nil {
		return nil, err
	}
	cm := simcluster.DefaultCostModel(1)
	var pts []Point
	for _, grain := range grains {
		cfg := slbdConfig(wl, grain)
		res, err := simcluster.Simulate(wl, cfg, cm)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{Series: "S2 sweeps", X: float64(grain), Value: res.Makespan})
	}
	fmt.Fprintf(w, "Fig 9a (%s): %dx%dx%d patches × %d cells, %d angles, %d cores\n",
		f, bx, by, bz, cells, angles, procs*coresPerProc)
	printSeries(w, "grain", "time[s]", pts)
	return pts, nil
}

// Fig9b reproduces Fig. 9b: priority strategy pairs on a structured sweep
// across core counts. SLBD+SLBD should win consistently (§V-D).
func Fig9b(f Fidelity, w io.Writer) ([]Point, error) {
	coresList := []int{96, 192, 384, 768}
	blocks := 8
	cells := int64(8000)
	angles := 8
	grain := int64(1000)
	if f == Quick {
		coresList = []int{96, 384}
		blocks = 6
		cells = 1000
		grain = 200
	}
	pairs := []priority.Pair{
		{Patch: priority.LDCP, Vertex: priority.LDCP},
		{Patch: priority.SLBD, Vertex: priority.SLBD},
		{Patch: priority.LDCP, Vertex: priority.SLBD},
	}
	cm := simcluster.DefaultCostModel(1)
	var pts []Point
	for _, cores := range coresList {
		wl, err := simcluster.StructuredWorkload(blocks, blocks, blocks, cells, procsFor(cores), angles, 1)
		if err != nil {
			return nil, err
		}
		for _, pair := range pairs {
			cfg := simcluster.Config{
				Workers:   workersPerProc,
				Grain:     grain,
				PatchPrio: patchPrioFor(wl, pair.Patch),
				EmitDelay: emitDelayFor(pair.Vertex),
			}
			res, err := simcluster.Simulate(wl, cfg, cm)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Point{Series: pair.String(), X: float64(cores), Value: res.Makespan})
		}
	}
	fmt.Fprintf(w, "Fig 9b (%s): %d³ patches × %d cells, %d angles\n", f, blocks, cells, angles)
	printSeries(w, "cores", "time[s]", pts)
	return pts, nil
}

// strongScaling runs a Kobayashi-N strong-scaling series.
func strongScaling(n int, coresList []int, angles int, w io.Writer, label string) ([]Point, error) {
	cm := simcluster.DefaultCostModel(1)
	var pts []Point
	for _, cores := range coresList {
		wl, err := kobaWorkload(n, procsFor(cores), angles)
		if err != nil {
			return nil, err
		}
		res, err := simcluster.Simulate(wl, slbdConfig(wl, 1000), cm)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{Series: label, X: float64(cores), Value: res.Makespan})
	}
	speedupTable(w, pts)
	return pts, nil
}

// Fig12a reproduces Fig. 12a: Kobayashi-400 strong scaling, 768 → 24,576
// cores. The paper reports 14.3× speedup (44.7% efficiency) over the
// 32-fold core increase.
func Fig12a(f Fidelity, w io.Writer) ([]Point, error) {
	n := 400
	angles := 40 // standard fidelity: one octant's worth of S16's 320
	coresList := []int{768, 1536, 3072, 6144, 12288, 24576}
	switch f {
	case Quick:
		n = 200
		angles = 8
		coresList = []int{192, 768, 3072}
	case Paper:
		angles = 320
	}
	fmt.Fprintf(w, "Fig 12a (%s): Kobayashi-%d, %d angles, patch 20³, grain 1000, SLBD+SLBD\n", f, n, angles)
	return strongScaling(n, coresList, angles, w, "Kobayashi-"+fmt.Sprint(n))
}

// Fig12b reproduces Fig. 12b: Kobayashi-800 strong scaling, 4,800 → 76,800
// cores (paper: 7.4× speedup, 46.3% efficiency over 16×).
func Fig12b(f Fidelity, w io.Writer) ([]Point, error) {
	n := 800
	angles := 24
	coresList := []int{4800, 9600, 19200, 38400, 76800}
	switch f {
	case Quick:
		n = 320
		angles = 8
		coresList = []int{1200, 4800, 19200}
	case Paper:
		angles = 320
	}
	fmt.Fprintf(w, "Fig 12b (%s): Kobayashi-%d, %d angles, patch 20³, grain 1000, SLBD+SLBD\n", f, n, angles)
	return strongScaling(n, coresList, angles, w, "Kobayashi-"+fmt.Sprint(n))
}

// Fig16 reproduces Fig. 16: the runtime overhead breakdown of a
// Kobayashi-200 sweep across core counts — kernel work plus moderate
// graph-op/pack overhead (~quarter of the total), communication, and idle
// time that grows with the core count.
func Fig16(f Fidelity, w io.Writer) ([]Point, error) {
	n := 200
	angles := 40
	coresList := []int{192, 384, 768, 1536, 3072}
	if f == Quick {
		angles = 8
		coresList = []int{192, 768, 3072}
	}
	cm := simcluster.DefaultCostModel(1)
	var pts []Point
	fmt.Fprintf(w, "Fig 16 (%s): Kobayashi-%d breakdown, %d angles (avg seconds per core)\n", f, n, angles)
	fmt.Fprintf(w, "  %8s %10s %10s %12s %10s %10s %10s\n",
		"cores", "kernel", "graph-op", "pack/unpack", "comm", "idle", "total")
	for _, cores := range coresList {
		procs := procsFor(cores)
		wl, err := kobaWorkload(n, procs, angles)
		if err != nil {
			return nil, err
		}
		res, err := simcluster.Simulate(wl, slbdConfig(wl, 1000), cm)
		if err != nil {
			return nil, err
		}
		totalCores := float64(procs * coresPerProc)
		kernel := res.Kernel / totalCores
		graphOp := res.GraphOp / totalCores
		pack := (res.Pack + res.Unpack) / totalCores
		comm := res.Route / totalCores
		idle := (res.WorkerIdle + res.MasterIdle) / totalCores
		fmt.Fprintf(w, "  %8d %10.3f %10.3f %12.3f %10.3f %10.3f %10.3f\n",
			cores, kernel, graphOp, pack, comm, idle, res.Makespan)
		pts = append(pts,
			Point{Series: "kernel", X: float64(cores), Value: kernel},
			Point{Series: "graph-op", X: float64(cores), Value: graphOp},
			Point{Series: "pack/unpack", X: float64(cores), Value: pack},
			Point{Series: "comm", X: float64(cores), Value: comm},
			Point{Series: "idle", X: float64(cores), Value: idle},
		)
	}
	return pts, nil
}

// Fig17a reproduces Fig. 17a: JSweep vs the JASMIN BSP-style baseline on
// Kobayashi-400. JSweep must be consistently faster, with the margin
// growing slowly with core count.
func Fig17a(f Fidelity, w io.Writer) ([]Point, error) {
	n := 400
	angles := 24
	coresList := []int{288, 576, 1152, 2304, 4608}
	if f == Quick {
		n = 200
		angles = 8
		coresList = []int{288, 1152, 4608}
	}
	cm := simcluster.DefaultCostModel(1)
	var pts []Point
	for _, cores := range coresList {
		wl, err := kobaWorkload(n, procsFor(cores), angles)
		if err != nil {
			return nil, err
		}
		cfg := slbdConfig(wl, 1000)
		dd, err := simcluster.Simulate(wl, cfg, cm)
		if err != nil {
			return nil, err
		}
		bspRes, err := simcluster.SimulateBSP(wl, cfg, cm)
		if err != nil {
			return nil, err
		}
		pts = append(pts,
			Point{Series: "JSweep", X: float64(cores), Value: dd.Makespan},
			Point{Series: "JASMIN", X: float64(cores), Value: bspRes.Makespan},
		)
	}
	fmt.Fprintf(w, "Fig 17a (%s): Kobayashi-%d, %d angles — JSweep vs JASMIN (BSP rounds)\n", f, n, angles)
	printSeries(w, "cores", "time[s]", pts)
	return pts, nil
}

// Table1 reproduces Table I: parallel-efficiency comparison against
// literature systems. Denovo's KBA efficiency comes from the analytic KBA
// model at the published core counts; PSD-b's figure is the published
// literature constant; JSweep rows are simulated.
func Table1(f Fidelity, w io.Writer) ([]Point, error) {
	cm := simcluster.DefaultCostModel(1)
	angles := 40
	if f == Quick {
		angles = 8
	}

	// JSweep Kobayashi-400: 6,144 vs 384 cores (paper: 89.6%).
	effKoba, err := simEfficiency(400, 384, 6144, angles, cm)
	if err != nil {
		return nil, err
	}
	// Literature constants, as the paper itself cites them.
	const denovoLit = 0.778 // Denovo [31], Kobayashi-400, 3600 vs 144
	const psdbLit = 0.88    // PSD-b [27], sphere 151,265 cells S4, 1024 vs 128
	// Our analytic KBA model at Denovo's core counts, as a cross-check of
	// the KBA substrate (structured baselines).
	kbaModel := kbaEfficiencyRatio(400, 144, 3600, cm)

	// JSweep sphere (small ball, S4): 1,536 vs 192 cores (paper: 66%).
	effBall, err := ballEfficiency(192, 1536, cm, f)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "Table I (%s): parallel efficiency, max vs base cores\n", f)
	fmt.Fprintf(w, "  %-14s %-28s %10s %18s\n", "system", "problem", "par.eff.", "cores (max/base)")
	fmt.Fprintf(w, "  %-14s %-28s %9.1f%% %18s\n", "Denovo (lit.)", "Kobayashi-400", denovoLit*100, "3600 vs 144")
	fmt.Fprintf(w, "  %-14s %-28s %9.1f%% %18s\n", "KBA model", "Kobayashi-400 (ours)", kbaModel*100, "3600 vs 144")
	fmt.Fprintf(w, "  %-14s %-28s %9.1f%% %18s\n", "JSweep", "Kobayashi-400", effKoba*100, "6144 vs 384")
	fmt.Fprintf(w, "  %-14s %-28s %9.1f%% %18s\n", "PSD-b (lit.)", "sphere 151k cells S4", psdbLit*100, "1024 vs 128")
	fmt.Fprintf(w, "  %-14s %-28s %9.1f%% %18s\n", "JSweep", "sphere 482k cells S4", effBall*100, "1536 vs 192")
	return []Point{
		{Series: "Denovo", X: 3600, Value: denovoLit},
		{Series: "KBA-model", X: 3600, Value: kbaModel},
		{Series: "JSweep-koba", X: 6144, Value: effKoba},
		{Series: "PSD-b", X: 1024, Value: psdbLit},
		{Series: "JSweep-ball", X: 1536, Value: effBall},
	}, nil
}

// simEfficiency returns the simulated parallel efficiency of Kobayashi-n
// between two core counts.
func simEfficiency(n, baseCores, maxCores, angles int, cm simcluster.CostModel) (float64, error) {
	run := func(cores int) (float64, error) {
		wl, err := kobaWorkload(n, procsFor(cores), angles)
		if err != nil {
			return 0, err
		}
		res, err := simcluster.Simulate(wl, slbdConfig(wl, 1000), cm)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	tb, err := run(baseCores)
	if err != nil {
		return 0, err
	}
	tm, err := run(maxCores)
	if err != nil {
		return 0, err
	}
	return (tb / tm) * float64(baseCores) / float64(maxCores), nil
}

// kbaEfficiencyRatio evaluates the KBA model at two core counts and
// returns eff(max)/eff(base) — the efficiency of the larger run normalized
// to the smaller, as Table I reports.
func kbaEfficiencyRatio(n, baseCores, maxCores int, cm simcluster.CostModel) float64 {
	model := func(cores int) float64 {
		px := 1
		for (px+1)*(px+1) <= cores {
			px++
		}
		m := kba.Model{
			Nx: n, Ny: n, Nz: n,
			Px: px, Py: cores / px,
			Ma: 40, Kb: 10,
			TCell:        cm.TCell,
			Latency:      cm.Latency,
			InvBandwidth: cm.InvBandwidth,
			BytesPerFace: cm.BytesPerFaceGroup,
		}
		return m.Efficiency()
	}
	return model(maxCores) / model(baseCores)
}
