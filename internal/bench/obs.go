package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"

	"jsweep/internal/kobayashi"
	"jsweep/internal/obs"
	"jsweep/internal/priority"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// ObsOverhead measures the cost of the observability layer on the hot
// solve path: the same source iteration with the process-default metric
// registry live (every transport frame counted, every round folded into
// histograms) against obs.SetDefault(nil), which turns every handle
// minted at solver construction into a no-op. The contract (DESIGN.md)
// is that instrumentation stays within 1% of the uninstrumented
// per-iteration time and never perturbs the numerics — both legs must
// converge to bitwise identical flux. After a warmup solve the legs run
// as interleaved pairs with alternating order, and the reported overhead
// is a trimmed mean of the per-pair wall-time ratios: interleaving
// cancels slow drift (thermal, background load), alternation cancels
// position-in-pair bias, and trimming discards the pairs where a GC
// cycle or scheduler hiccup landed inside one leg. The residual noise
// (two standard errors) rides along in the output so a run only flags
// the budget when the overhead is significant, not when the scheduler
// had a bad second.
func ObsOverhead(f Fidelity, w io.Writer) ([]Point, error) {
	kobaN := 16
	snOrder := 2
	reps := 15
	switch f {
	case Standard:
		kobaN = 24
		snOrder = 4
	case Paper:
		kobaN = 32
		snOrder = 4
		reps = 9
	}

	prob, km, err := kobayashi.Build(kobayashi.Spec{
		N: kobaN, SnOrder: snOrder, Scattering: true, Scheme: transport.Diamond,
	})
	if err != nil {
		return nil, err
	}
	b := kobaN / 4
	d, err := km.BlockDecompose(b, b, b)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("kobayashi-%d", kobaN)

	procs := 2
	workers := maxI(1, runtime.NumCPU()/procs-1)
	opts := sweep.Options{
		Procs: procs, Workers: workers, Grain: 64,
		Pair: priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
	}
	iterCfg := transport.IterConfig{Tolerance: 1e-6, MaxIterations: 200}

	// Metric handles resolve against obs.Default() at solver construction,
	// so each leg swaps the default before NewSolver and the deferred
	// restore puts the process registry back whatever happens.
	prev := obs.Default()
	defer obs.SetDefault(prev)

	once := func(reg *obs.Registry) (*transport.Result, float64, error) {
		obs.SetDefault(reg)
		s, err := sweep.NewSolver(prob, d, opts)
		if err != nil {
			return nil, 0, err
		}
		t0 := time.Now()
		r, err := transport.SourceIterate(prob, s, iterCfg)
		wall := time.Since(t0).Seconds()
		s.Close()
		return r, wall, err
	}

	// One untimed warmup solve heats the allocator and scheduler, then
	// each rep times one instrumented and one no-op solve back to back.
	if _, _, err := once(obs.NewRegistry()); err != nil {
		return nil, fmt.Errorf("bench: %s warmup: %w", name, err)
	}
	var resOn, resOff *transport.Result
	var sumOn, sumOff float64
	ratios := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		// Alternate which leg leads the pair so any position-in-pair bias
		// (cache residue from the previous solve) cancels too.
		legs := []*obs.Registry{obs.NewRegistry(), nil}
		if i%2 == 1 {
			legs[0], legs[1] = legs[1], legs[0]
		}
		var wallOn, wallOff float64
		for _, reg := range legs {
			r, wall, err := once(reg)
			if err != nil {
				return nil, fmt.Errorf("bench: %s rep %d: %w", name, i, err)
			}
			if reg != nil {
				resOn, wallOn = r, wall
			} else {
				resOff, wallOff = r, wall
			}
		}
		sumOn += wallOn
		sumOff += wallOff
		ratios = append(ratios, wallOn/wallOff)
	}

	if resOn.Iterations != resOff.Iterations {
		return nil, fmt.Errorf("bench: %s iteration counts diverge: instrumented=%d no-op=%d",
			name, resOn.Iterations, resOff.Iterations)
	}
	for g := range resOff.Phi {
		for c := range resOff.Phi[g] {
			if resOff.Phi[g][c] != resOn.Phi[g][c] {
				return nil, fmt.Errorf("bench: %s flux diverges at group %d cell %d", name, g, c)
			}
		}
	}

	iters := float64(resOn.Iterations)
	onPer := sumOn / float64(reps) / iters
	offPer := sumOff / float64(reps) / iters

	// A GC cycle or a scheduler hiccup landing inside one leg of a pair
	// skews that pair's ratio by several percent, so the point estimate
	// is a 20%-trimmed mean of the per-pair ratios and the noise bound is
	// two standard errors of the surviving pairs. Only an overhead that
	// clears the budget by more than the noise is a real regression.
	sort.Float64s(ratios)
	trim := len(ratios) / 5
	kept := ratios[trim : len(ratios)-trim]
	var mean, ss float64
	for _, r := range kept {
		mean += r
	}
	mean /= float64(len(kept))
	for _, r := range kept {
		ss += (r - mean) * (r - mean)
	}
	noise := 0.0
	if n := len(kept); n > 1 {
		noise = 2 * math.Sqrt(ss/float64(n-1)/float64(n))
	}
	overhead := mean - 1

	fmt.Fprintf(w, "Observability overhead (%s): %dp×%dw, %d interleaved pairs\n",
		f, procs, workers, reps)
	fmt.Fprintf(w, "  %-18s %6s %16s %16s %14s\n",
		"case", "iters", "noop [ms/iter]", "instr [ms/iter]", "overhead")
	verdict := "within 1% budget"
	if overhead-noise > 0.01 {
		verdict = "OVER the 1% budget"
	}
	fmt.Fprintf(w, "  %-18s %6d %16.2f %16.2f %+7.2f%%±%.2f%%  (%s)\n",
		name, resOn.Iterations, 1e3*offPer, 1e3*onPer, 100*overhead, 100*noise, verdict)

	return []Point{
		{Series: name + "/noop", X: iters, Value: offPer},
		{Series: name + "/instrumented", X: iters, Value: onPer},
		{Series: name + "/overhead", X: iters, Value: overhead},
		{Series: name + "/noise", X: iters, Value: noise},
	}, nil
}
