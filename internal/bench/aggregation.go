package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"jsweep/internal/kobayashi"
	"jsweep/internal/priority"
	rt "jsweep/internal/runtime"
	"jsweep/internal/simcluster"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// AggregationSweep sweeps the message-aggregation batch size on the
// simulated cluster (the paper's Fig. 12 methodology applied to §IV's
// batching claim): makespan and message counts of a Kobayashi sweep as
// MaxBatchStreams grows from 1 (no coalescing) to deep batches. It then
// cross-checks on the real threaded runtime that aggregation preserves
// the stream count while cutting transport messages.
func AggregationSweep(f Fidelity, w io.Writer) ([]Point, error) {
	n := 200
	angles := 24
	cores := 768
	batchSizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if f == Quick {
		n = 100
		angles = 8
		cores = 192
		batchSizes = []int{1, 4, 16, 64, 256}
	}
	procs := procsFor(cores)
	wl, err := kobaWorkload(n, procs, angles)
	if err != nil {
		return nil, err
	}
	cm := simcluster.DefaultCostModel(1)
	var pts []Point

	fmt.Fprintf(w, "Aggregation sweep (%s): Kobayashi-%d, %d angles, %d cores — batch size vs makespan\n",
		f, n, angles, cores)
	base, err := simcluster.Simulate(wl, slbdConfig(wl, 1000), cm)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "  %10s %12s %14s %12s %14s\n", "batch", "time[s]", "batches", "strm/batch", "deadline-flush")
	fmt.Fprintf(w, "  %10s %12.4f %14d %12s %14s  (aggregation off)\n", "off", base.Makespan, base.BatchesSent, "-", "-")
	pts = append(pts, Point{Series: "agg-off", X: 0, Value: base.Makespan})
	for _, bs := range batchSizes {
		cfg := slbdConfig(wl, 1000)
		// A generous deadline keeps the size cap the binding trigger, so
		// the x-axis actually sweeps the batch depth.
		cfg.Aggregation = simcluster.Aggregation{Enabled: true, MaxBatchStreams: bs, FlushDelay: 200e-6}
		res, err := simcluster.Simulate(wl, cfg, cm)
		if err != nil {
			return nil, err
		}
		if res.RemoteStreams != base.RemoteStreams {
			return nil, fmt.Errorf("bench: aggregation changed remote streams (%d vs %d)",
				res.RemoteStreams, base.RemoteStreams)
		}
		fmt.Fprintf(w, "  %10d %12.4f %14d %12.1f %14d\n",
			bs, res.Makespan, res.BatchesSent, res.StreamsPerBatch, res.FlushOnDeadline)
		pts = append(pts,
			Point{Series: "agg-makespan", X: float64(bs), Value: res.Makespan},
			Point{Series: "agg-batches", X: float64(bs), Value: float64(res.BatchesSent)},
		)
	}

	// Real-runtime cross-check on the host.
	rn := 16
	if f == Paper {
		rn = 32
	}
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: rn, SnOrder: 2, Scheme: transport.Diamond})
	if err != nil {
		return nil, err
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		return nil, err
	}
	q := flatSource(prob)
	rprocs := 4
	workers := maxI(1, runtime.NumCPU()/rprocs-1)
	fmt.Fprintf(w, "  real runtime (Kobayashi-%d, %dp×%dw):\n", rn, rprocs, workers)
	fmt.Fprintf(w, "  %10s %12s %14s %14s %12s\n", "agg", "time[s]", "remote strms", "messages", "batches")
	for _, enabled := range []bool{false, true} {
		opts := sweep.Options{
			Procs: rprocs, Workers: workers, Grain: 64,
			Pair:        priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
			Aggregation: rt.AggregationConfig{Enabled: enabled},
		}
		s, err := sweep.NewSolver(prob, d, opts)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := s.Sweep(q); err != nil {
			return nil, err
		}
		wall := time.Since(t0).Seconds()
		st := s.LastStats().Runtime
		fmt.Fprintf(w, "  %10v %12.4f %14d %14d %12d\n",
			enabled, wall, st.RemoteStreams, st.Messages, st.BatchesSent)
		series := "real-agg-off"
		if enabled {
			series = "real-agg-on"
			if st.BatchesSent == 0 || st.BatchesSent >= st.RemoteStreams {
				return nil, fmt.Errorf("bench: real runtime batches=%d remote=%d — aggregation not coalescing",
					st.BatchesSent, st.RemoteStreams)
			}
		}
		pts = append(pts,
			Point{Series: series, X: float64(st.RemoteStreams), Value: wall},
			Point{Series: series + "-messages", X: float64(st.RemoteStreams), Value: float64(st.Messages)},
		)
	}
	return pts, nil
}
