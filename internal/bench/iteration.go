package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"jsweep/internal/geom"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/partition"
	"jsweep/internal/priority"
	"jsweep/internal/quadrature"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// IterationReuse measures the persistent-session claim (paper §IV: the
// runtime is a long-lived service): across the sweeps of a full source
// iteration, reusing one runtime session — processes, worker goroutines,
// transport, program objects, pooled buffers — against rebuilding
// everything per sweep. Both configurations must converge to bitwise
// identical flux; the experiment reports per-iteration wall time and the
// reuse speedup on the structured Kobayashi problem and the unstructured
// ball.
func IterationReuse(f Fidelity, w io.Writer) ([]Point, error) {
	type itercase struct {
		name  string
		prob  *transport.Problem
		d     *mesh.Decomposition
		grain int
	}
	var cases []itercase

	kobaN := 16
	ballCells := 3000
	snOrder := 2
	switch f {
	case Standard:
		kobaN = 24
		ballCells = 12000
		snOrder = 4
	case Paper:
		kobaN = 32
		ballCells = 40000
		snOrder = 4
	}

	kprob, km, err := kobayashi.Build(kobayashi.Spec{
		N: kobaN, SnOrder: snOrder, Scattering: true, Scheme: transport.Diamond,
	})
	if err != nil {
		return nil, err
	}
	b := kobaN / 4
	kd, err := km.BlockDecompose(b, b, b)
	if err != nil {
		return nil, err
	}
	cases = append(cases, itercase{name: fmt.Sprintf("kobayashi-%d", kobaN), prob: kprob, d: kd, grain: 64})

	bm, err := meshgen.BallWithCells(ballCells, 10.0)
	if err != nil {
		return nil, err
	}
	bm.SetMaterialFunc(func(geom.Vec3) int { return 0 })
	quad, err := quadrature.New(snOrder)
	if err != nil {
		return nil, err
	}
	bprob := &transport.Problem{
		M: bm,
		Mats: []transport.Material{{
			Name:   "ball",
			SigmaT: []float64{0.5},
			SigmaS: [][]float64{{0.25}},
			Source: []float64{1.0},
		}},
		Quad:   quad,
		Groups: 1,
		Scheme: transport.Step,
	}
	bd, err := partition.ByPatchSize(bm, 400, partition.GreedyGraph)
	if err != nil {
		return nil, err
	}
	cases = append(cases, itercase{name: fmt.Sprintf("ball-%d", bm.NumCells()), prob: bprob, d: bd, grain: 32})

	procs := 2
	workers := maxI(1, runtime.NumCPU()/procs-1)
	iterCfg := transport.IterConfig{Tolerance: 1e-6, MaxIterations: 200}

	fmt.Fprintf(w, "Persistent-session iteration throughput (%s): %dp×%dw, tol %.0e\n",
		f, procs, workers, iterCfg.Tolerance)
	fmt.Fprintf(w, "  %-18s %6s %8s %14s %14s %9s\n",
		"case", "iters", "rounds", "off [ms/iter]", "on [ms/iter]", "speedup")

	var pts []Point
	for _, tc := range cases {
		opts := sweep.Options{
			Procs: procs, Workers: workers, Grain: tc.grain,
			Pair: priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
		}

		run := func(mode sweep.ReuseMode) (*transport.Result, sweep.SweepStats, float64, error) {
			o := opts
			o.ReuseRuntime = mode
			s, err := sweep.NewSolver(tc.prob, tc.d, o)
			if err != nil {
				return nil, sweep.SweepStats{}, 0, err
			}
			defer s.Close()
			t0 := time.Now()
			res, err := transport.SourceIterate(tc.prob, s, iterCfg)
			if err != nil {
				return nil, sweep.SweepStats{}, 0, err
			}
			return res, s.LastStats(), time.Since(t0).Seconds(), nil
		}

		resOff, _, wallOff, err := run(sweep.ReuseOff)
		if err != nil {
			return nil, fmt.Errorf("bench: %s reuse-off: %w", tc.name, err)
		}
		resOn, stOn, wallOn, err := run(sweep.ReuseOn)
		if err != nil {
			return nil, fmt.Errorf("bench: %s reuse-on: %w", tc.name, err)
		}
		if resOn.Iterations != resOff.Iterations {
			return nil, fmt.Errorf("bench: %s iteration counts diverge: on=%d off=%d",
				tc.name, resOn.Iterations, resOff.Iterations)
		}
		for g := range resOff.Phi {
			for c := range resOff.Phi[g] {
				if resOff.Phi[g][c] != resOn.Phi[g][c] {
					return nil, fmt.Errorf("bench: %s flux diverges at group %d cell %d", tc.name, g, c)
				}
			}
		}
		if got, want := stOn.Cumulative.RoundsRun, int64(resOn.Iterations); got != want {
			return nil, fmt.Errorf("bench: %s session ran %d rounds for %d iterations", tc.name, got, want)
		}

		iters := float64(resOn.Iterations)
		offPer := wallOff / iters
		onPer := wallOn / iters
		fmt.Fprintf(w, "  %-18s %6d %8d %14.2f %14.2f %8.2fx\n",
			tc.name, resOn.Iterations, stOn.Cumulative.RoundsRun,
			1e3*offPer, 1e3*onPer, offPer/onPer)
		pts = append(pts,
			Point{Series: tc.name + "/reuse-off", X: iters, Value: offPer},
			Point{Series: tc.name + "/reuse-on", X: iters, Value: onPer},
			Point{Series: tc.name + "/speedup", X: iters, Value: offPer / onPer},
		)
	}
	return pts, nil
}
