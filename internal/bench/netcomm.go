package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/netcomm"
	"jsweep/internal/nodespec"
)

// NetBackend compares the in-memory transport against the TCP backend
// on the same Kobayashi solve, aggregation off and on: per-iteration
// wall time, transport messages, TCP frames and bytes actually on the
// wire. The TCP rows run the full netcomm stack (rendezvous, peer mesh,
// framing, write coalescing) over loopback with one solver node per
// rank — the same code path jsweep-node uses, minus process isolation —
// and every backend/aggregation combination must land on the identical
// flux bit pattern.
func NetBackend(f Fidelity, w io.Writer) ([]Point, error) {
	spec := nodespec.Spec{
		Mesh: "kobayashi", N: 16, SnOrder: 2, Scatter: true,
		Procs: 4, Workers: 2, Grain: 64, Tol: 1e-7,
	}
	switch f {
	case Standard:
		spec.SnOrder = 4
	case Paper:
		spec.N = 24
		spec.SnOrder = 4
	}
	fmt.Fprintf(w, "Transport backends (%s): Kobayashi-%d S%d, %d ranks × %d workers\n",
		f, spec.N, spec.SnOrder, spec.Procs, spec.Workers)
	fmt.Fprintf(w, "  %-12s %6s %10s %12s %10s %12s %12s %10s\n",
		"backend", "agg", "iters", "s/iter", "messages", "bytes", "wire-frames", "wire-KB")

	var pts []Point
	hashes := map[string]string{}
	for _, backend := range []string{"mem", "tcp"} {
		for _, agg := range []bool{false, true} {
			s := spec
			s.Agg = agg
			var res *nodespec.NodeResult
			var err error
			if backend == "mem" {
				res, err = runMemSolve(s)
			} else {
				res, err = runTCPSolve(s)
			}
			if err != nil {
				return nil, fmt.Errorf("bench: %s agg=%v: %w", backend, agg, err)
			}
			iters := res.Result.Iterations
			perIter := res.Wall.Seconds() / float64(iters)
			cs := res.Cluster
			fmt.Fprintf(w, "  %-12s %6v %10d %12.5f %10d %12d %12d %10.1f\n",
				backend, agg, iters, perIter, cs.Messages, cs.BytesSent, cs.Frames, float64(cs.WireBytes)/1024)
			series := fmt.Sprintf("%s-agg-%v", backend, agg)
			pts = append(pts,
				Point{Series: series + "-s-per-iter", X: float64(spec.Procs), Value: perIter},
				Point{Series: series + "-messages", X: float64(spec.Procs), Value: float64(cs.Messages)},
				Point{Series: series + "-bytes", X: float64(spec.Procs), Value: float64(cs.BytesSent)},
				Point{Series: series + "-wire-frames", X: float64(spec.Procs), Value: float64(cs.Frames)},
				Point{Series: series + "-wire-bytes", X: float64(spec.Procs), Value: float64(cs.WireBytes)},
			)
			hashes[series] = res.FluxHash
			if agg && cs.Messages >= cs.RemoteStreams && cs.RemoteStreams > 0 {
				return nil, fmt.Errorf("bench: %s: aggregation not coalescing (%d messages for %d streams)",
					backend, cs.Messages, cs.RemoteStreams)
			}
		}
	}
	// Cross-backend bitwise agreement: the whole point of the pluggable
	// transport is that the backend never changes the answer.
	first := ""
	for series, h := range hashes {
		if first == "" {
			first = h
		} else if h != first {
			return nil, fmt.Errorf("bench: flux hash of %s diverged (%s vs %s)", series, h, first)
		}
	}
	fmt.Fprintf(w, "  flux bit pattern identical across all four runs (%s)\n", first)
	return pts, nil
}

// runMemSolve solves over the in-memory transport (all ranks in this
// process).
func runMemSolve(spec nodespec.Spec) (*nodespec.NodeResult, error) {
	tr, err := comm.NewTransport(spec.Procs)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	return nodespec.RunOn(spec, tr, nodespec.NodeOptions{Rank: 0})
}

// runTCPSolve solves over the TCP backend: one transport and solver per
// rank, connected through a loopback rendezvous.
func runTCPSolve(spec nodespec.Spec) (*nodespec.NodeResult, error) {
	cluster := fmt.Sprintf("bench-net-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, spec.Procs)
	if err != nil {
		return nil, err
	}
	defer rz.Close()
	results := make([]*nodespec.NodeResult, spec.Procs)
	errs := make([]error, spec.Procs)
	var wg sync.WaitGroup
	for r := 0; r < spec.Procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: spec.Procs, Rendezvous: rz.Addr(),
			})
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = nodespec.RunOn(spec, tr, nodespec.NodeOptions{Rank: r})
			if errs[r] != nil {
				tr.Abort() // unblock peers waiting on this rank
			}
			tr.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	for r := 1; r < spec.Procs; r++ {
		if results[r].FluxHash != results[0].FluxHash {
			return nil, fmt.Errorf("rank %d flux hash %s != rank 0 %s", r, results[r].FluxHash, results[0].FluxHash)
		}
	}
	return results[0], nil
}
