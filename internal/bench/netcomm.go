package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/netcomm"
	"jsweep/internal/nodespec"
)

// NetBackend compares the in-memory transport against the wire
// backends (shared-memory rings, Unix-domain sockets, TCP) on the same
// Kobayashi solve, aggregation off and on: per-iteration wall time,
// heap allocations, transport messages, wire frames and bytes actually
// on the wire. The wire rows run the full netcomm stack (rendezvous,
// peer mesh, framing, coalescing, buffer recycling) over loopback with
// one solver node per rank — the same code path jsweep-node uses,
// minus process isolation — and every backend/aggregation combination
// must land on the identical flux bit pattern. A final ablation
// re-runs the UDS solve with the wire buffer pool disabled to put a
// number on what recycling saves.
func NetBackend(f Fidelity, w io.Writer) ([]Point, error) {
	spec := nodespec.Spec{
		Mesh: "kobayashi", N: 16, SnOrder: 2, Scatter: true,
		Procs: 4, Workers: 2, Grain: 64, Tol: 1e-7,
	}
	switch f {
	case Standard:
		spec.SnOrder = 4
	case Paper:
		spec.N = 24
		spec.SnOrder = 4
	}
	fmt.Fprintf(w, "Transport backends (%s): Kobayashi-%d S%d, %d ranks × %d workers\n",
		f, spec.N, spec.SnOrder, spec.Procs, spec.Workers)
	fmt.Fprintf(w, "  %-12s %6s %10s %12s %12s %10s %12s %12s %10s\n",
		"backend", "agg", "iters", "s/iter", "allocs/iter", "messages", "bytes", "wire-frames", "wire-KB")

	var pts []Point
	hashes := map[string]string{}
	var udsPooledAllocs float64
	for _, backend := range []string{"mem", "shm", "uds", "tcp"} {
		for _, agg := range []bool{false, true} {
			s := spec
			s.Agg = agg
			res, perIter, allocsPerIter, err := runBest(backend, s)
			if err != nil {
				return nil, fmt.Errorf("bench: %s agg=%v: %w", backend, agg, err)
			}
			iters := res.Result.Iterations
			cs := res.Cluster
			fmt.Fprintf(w, "  %-12s %6v %10d %12.5f %12.0f %10d %12d %12d %10.1f\n",
				backend, agg, iters, perIter, allocsPerIter, cs.Messages, cs.BytesSent, cs.Frames, float64(cs.WireBytes)/1024)
			series := fmt.Sprintf("%s-agg-%v", backend, agg)
			pts = append(pts,
				Point{Series: series + "-s-per-iter", X: float64(spec.Procs), Value: perIter},
				Point{Series: series + "-allocs-per-iter", X: float64(spec.Procs), Value: allocsPerIter},
				Point{Series: series + "-messages", X: float64(spec.Procs), Value: float64(cs.Messages)},
				Point{Series: series + "-bytes", X: float64(spec.Procs), Value: float64(cs.BytesSent)},
				Point{Series: series + "-wire-frames", X: float64(spec.Procs), Value: float64(cs.Frames)},
				Point{Series: series + "-wire-bytes", X: float64(spec.Procs), Value: float64(cs.WireBytes)},
			)
			hashes[series] = res.FluxHash
			if backend == "uds" && !agg {
				udsPooledAllocs = allocsPerIter
			}
			if backend != "mem" {
				want := int64(spec.Procs * (spec.Procs - 1))
				if (backend == "uds" || backend == "shm") && cs.FastPairs != want {
					return nil, fmt.Errorf("bench: %s: %d fast pairs, want %d", backend, cs.FastPairs, want)
				}
				if backend == "shm" && cs.ShmPairs != want {
					return nil, fmt.Errorf("bench: shm: %d shm pairs, want %d", cs.ShmPairs, want)
				}
				if backend == "tcp" && cs.FastPairs != 0 {
					return nil, fmt.Errorf("bench: tcp: %d fast pairs, want 0", cs.FastPairs)
				}
			}
			if agg && cs.Messages >= cs.RemoteStreams && cs.RemoteStreams > 0 {
				return nil, fmt.Errorf("bench: %s: aggregation not coalescing (%d messages for %d streams)",
					backend, cs.Messages, cs.RemoteStreams)
			}
		}
	}

	// Pooling ablation: same UDS solve, wire buffer pool off.
	was := comm.SetPooling(false)
	resOff, _, offPerIter, err := runBest("uds", spec)
	comm.SetPooling(was)
	if err != nil {
		return nil, fmt.Errorf("bench: uds pooling-off: %w", err)
	}
	hashes["uds-pooling-off"] = resOff.FluxHash
	pts = append(pts, Point{Series: "uds-pooling-off-allocs-per-iter", X: float64(spec.Procs), Value: offPerIter})
	if udsPooledAllocs > 0 && offPerIter > 0 {
		fmt.Fprintf(w, "  buffer pool ablation (uds, agg=false): %.0f allocs/iter pooled vs %.0f unpooled (%.1f%% fewer)\n",
			udsPooledAllocs, offPerIter, 100*(1-udsPooledAllocs/offPerIter))
	}

	// Wire microbenchmark: the solves above are compute-bound (the
	// wire flavor is a rounding error in s/iter), so isolate the
	// wires with a 2-rank ping-pong over the data lane — this is
	// where the same-host tiers earn their keep.
	for _, wire := range []netcomm.Wire{netcomm.WireShm, netcomm.WireUDS, netcomm.WireTCP} {
		name := wire.String()
		rtt, err := pingPong(wire, 4096, 2000)
		if err != nil {
			return nil, fmt.Errorf("bench: %s ping-pong: %w", name, err)
		}
		fmt.Fprintf(w, "  wire ping-pong (%s, 4 KiB): %.1f µs/roundtrip\n", name, rtt)
		pts = append(pts, Point{Series: name + "-rtt-us", X: 4096, Value: rtt})
	}

	// Cross-backend bitwise agreement: the whole point of the pluggable
	// transport is that the backend never changes the answer.
	first := ""
	for series, h := range hashes {
		if first == "" {
			first = h
		} else if h != first {
			return nil, fmt.Errorf("bench: flux hash of %s diverged (%s vs %s)", series, h, first)
		}
	}
	fmt.Fprintf(w, "  flux bit pattern identical across all %d runs (%s)\n", len(hashes), first)
	return pts, nil
}

// runBest runs a backend/spec combination netReps times and keeps the
// best per-iteration wall time and allocation count of any rep (the
// stats and flux hash come from the last run — they are deterministic
// across reps). Best-of-N is what makes the uds-vs-tcp comparison
// meaningful at quick fidelity, where one solve is short enough for
// scheduler noise to swamp the socket difference.
func runBest(backend string, s nodespec.Spec) (res *nodespec.NodeResult, perIter, allocsPerIter float64, err error) {
	for rep := 0; rep < netReps; rep++ {
		before := mallocs()
		switch backend {
		case "mem":
			res, err = runMemSolve(s)
		case "shm":
			res, err = runNetSolve(s, netcomm.WireShm)
		case "uds":
			res, err = runNetSolve(s, netcomm.WireUDS)
		default:
			res, err = runNetSolve(s, netcomm.WireTCP)
		}
		allocs := mallocs() - before
		if err != nil {
			return nil, 0, 0, err
		}
		iters := float64(res.Result.Iterations)
		if p := res.Wall.Seconds() / iters; rep == 0 || p < perIter {
			perIter = p
		}
		if a := float64(allocs) / iters; rep == 0 || a < allocsPerIter {
			allocsPerIter = a
		}
	}
	return res, perIter, allocsPerIter, nil
}

// netReps is the rep count behind runBest's best-of-N.
const netReps = 3

// pingPong joins a 2-rank cluster over the forced wire flavor and
// measures the mean data-lane round-trip time of a size-byte message
// over rounds exchanges (after a 10% warmup).
func pingPong(wire netcomm.Wire, size, rounds int) (usPerRT float64, err error) {
	cluster := fmt.Sprintf("bench-rtt-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		return 0, err
	}
	defer rz.Close()
	trs := make([]*netcomm.Transport, 2)
	errs := make([]error, 2)
	var join sync.WaitGroup
	for r := 0; r < 2; r++ {
		join.Add(1)
		go func(r int) {
			defer join.Done()
			trs[r], errs[r] = netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(), Wire: wire,
			})
		}(r)
	}
	join.Wait()
	for r, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("rank %d join: %w", r, err)
		}
	}
	// Close is collective (like MPI_Finalize): both ranks must close
	// concurrently, or the first Close sits out the full close timeout
	// waiting for a peer EOF that never comes.
	defer func() {
		var cwg sync.WaitGroup
		for _, tr := range trs {
			cwg.Add(1)
			go func(tr *netcomm.Transport) { defer cwg.Done(); tr.Close() }(tr)
		}
		cwg.Wait()
	}()

	recv := func(ep comm.Endpoint) (comm.Message, error) {
		for {
			if m, ok := ep.TryRecv(); ok {
				return m, nil
			}
			select {
			case <-ep.Notify():
			default:
				if err := ep.Err(); err != nil {
					return comm.Message{}, err
				}
				<-ep.Notify()
			}
		}
	}

	// Rank 1 echoes everything back until its transport closes.
	echoDone := make(chan error, 1)
	go func() {
		ep := trs[1].Endpoint(1)
		for i := 0; i < rounds+rounds/10; i++ {
			m, err := recv(ep)
			if err != nil {
				echoDone <- err
				return
			}
			if err := ep.Send(0, m.Data); err != nil {
				echoDone <- err
				return
			}
		}
		echoDone <- nil
	}()

	ep := trs[0].Endpoint(0)
	payload := make([]byte, size)
	var start time.Time
	for i := 0; i < rounds+rounds/10; i++ {
		if i == rounds/10 {
			start = time.Now()
		}
		if err := ep.Send(1, payload); err != nil {
			return 0, err
		}
		if _, err := recv(ep); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if err := <-echoDone; err != nil {
		return 0, err
	}
	return float64(elapsed.Microseconds()) / float64(rounds), nil
}

func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// runMemSolve solves over the in-memory transport (all ranks in this
// process).
func runMemSolve(spec nodespec.Spec) (*nodespec.NodeResult, error) {
	tr, err := comm.NewTransport(spec.Procs)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	return nodespec.RunOn(spec, tr, nodespec.NodeOptions{Rank: 0})
}

// runNetSolve solves over a netcomm backend: one transport and solver
// per rank, connected through a loopback rendezvous, with the wire
// flavor (shm, UDS or TCP) forced so each row measures exactly one
// path.
func runNetSolve(spec nodespec.Spec, wire netcomm.Wire) (*nodespec.NodeResult, error) {
	cluster := fmt.Sprintf("bench-net-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, spec.Procs)
	if err != nil {
		return nil, err
	}
	defer rz.Close()
	results := make([]*nodespec.NodeResult, spec.Procs)
	errs := make([]error, spec.Procs)
	var wg sync.WaitGroup
	for r := 0; r < spec.Procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: spec.Procs, Rendezvous: rz.Addr(),
				Wire: wire,
			})
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = nodespec.RunOn(spec, tr, nodespec.NodeOptions{Rank: r})
			if errs[r] != nil {
				tr.Abort() // unblock peers waiting on this rank
			}
			tr.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	for r := 1; r < spec.Procs; r++ {
		if results[r].FluxHash != results[0].FluxHash {
			return nil, fmt.Errorf("rank %d flux hash %s != rank 0 %s", r, results[r].FluxHash, results[0].FluxHash)
		}
	}
	return results[0], nil
}
