package bench

import (
	"io"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) []Point {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	pts, err := e.Run(Quick, io.Discard)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(pts) == 0 {
		t.Fatalf("%s: no points", id)
	}
	return pts
}

func series(pts []Point, name string) []Point {
	var out []Point
	for _, p := range pts {
		if p.Series == name {
			out = append(out, p)
		}
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig9a", "fig9b", "fig12a", "fig12b", "fig13a", "fig13b",
		"fig14a", "fig14b", "fig15", "fig16", "fig17a", "fig17b", "tab1", "coarse", "real", "agg", "iter", "cyclic", "net", "obs"}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find should miss unknown ids")
	}
}

func TestParseFidelity(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Fidelity
	}{{"quick", Quick}, {"standard", Standard}, {"", Standard}, {"paper", Paper}, {"full", Paper}} {
		got, err := ParseFidelity(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFidelity(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseFidelity("bogus"); err == nil {
		t.Error("bogus fidelity should fail")
	}
}

// Fig. 9a shape: runtime falls steeply from grain 1 and rises again for
// excessive grains (the U of §V-C).
func TestFig9aShape(t *testing.T) {
	pts := runExp(t, "fig9a")
	s := series(pts, "S2 sweeps")
	first, last := s[0], s[len(s)-1]
	min := s[0]
	for _, p := range s {
		if p.Value < min.Value {
			min = p
		}
	}
	if min.X == first.X {
		t.Errorf("grain 1 should not be optimal: %+v", s)
	}
	if first.Value < 2*min.Value {
		t.Errorf("grain 1 (%v) should be far above the optimum (%v)", first.Value, min.Value)
	}
	if last.Value <= min.Value {
		t.Errorf("maximal grain (%v) should be above the optimum (%v)", last.Value, min.Value)
	}
}

// Fig. 9b shape: SLBD+SLBD stays within a few percent of the best pair at
// every core count (the paper finds SLBD constantly best; at Quick scale
// strategy gaps shrink into the percent range).
func TestFig9bShape(t *testing.T) {
	pts := runExp(t, "fig9b")
	slbd := series(pts, "SLBD+SLBD")
	if len(slbd) == 0 {
		t.Fatal("missing SLBD+SLBD series")
	}
	for _, p := range slbd {
		best := p.Value
		for _, q := range pts {
			if q.X == p.X && q.Value < best {
				best = q.Value
			}
		}
		if p.Value > best*1.05 {
			t.Errorf("at %g cores SLBD+SLBD (%v) trails the best (%v) by >5%%", p.X, p.Value, best)
		}
	}
}

// Strong scaling shapes: runtimes fall monotonically with cores, with
// sublinear speedup at the top end.
func testStrongScaling(t *testing.T, id, ser string, maxTopEff float64) {
	t.Helper()
	pts := series(runExp(t, id), ser)
	if len(pts) < 3 {
		t.Fatalf("%s: want >= 3 points", id)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value >= pts[i-1].Value {
			t.Errorf("%s: time did not fall from %g to %g cores", id, pts[i-1].X, pts[i].X)
		}
	}
	base, top := pts[0], pts[len(pts)-1]
	eff := (base.Value / top.Value) * base.X / top.X
	if eff >= maxTopEff {
		t.Errorf("%s: top efficiency %.2f suspiciously ideal (>= %.2f)", id, eff, maxTopEff)
	}
	if eff <= 0.02 {
		t.Errorf("%s: top efficiency %.2f collapsed", id, eff)
	}
}

func TestFig12aShape(t *testing.T) { testStrongScaling(t, "fig12a", "Kobayashi-200", 0.95) }
func TestFig12bShape(t *testing.T) { testStrongScaling(t, "fig12b", "Kobayashi-320", 0.95) }
func TestFig14aShape(t *testing.T) { testStrongScaling(t, "fig14a", "ball", 0.98) }
func TestFig14bShape(t *testing.T) { testStrongScaling(t, "fig14b", "ball", 0.98) }

// Fig. 13a shape: the patch-size curve falls from its smallest patch and
// rises again by the largest (fall-then-rise of §VI-B1).
func TestFig13aShape(t *testing.T) {
	pts := runExp(t, "fig13a")
	ps := series(pts, "patch-size")
	min := ps[0]
	for _, p := range ps {
		if p.Value < min.Value {
			min = p
		}
	}
	if min.X == ps[0].X {
		t.Errorf("smallest patch should not win: %+v", ps)
	}
	// Grain curve: grain 1 is worst.
	gr := series(pts, "cluster-grain")
	for _, p := range gr[1:] {
		if p.Value >= gr[0].Value {
			t.Errorf("grain %g (%v) should beat grain 1 (%v)", p.X, p.Value, gr[0].Value)
		}
	}
}

// Fig. 13b: all four strategies complete; spreads stay moderate
// (priority effects are "not so significant" on unstructured meshes).
func TestFig13bShape(t *testing.T) {
	pts := runExp(t, "fig13b")
	byX := map[float64][]float64{}
	for _, p := range pts {
		byX[p.X] = append(byX[p.X], p.Value)
	}
	for x, vs := range byX {
		if len(vs) != 4 {
			t.Fatalf("at %g cores: %d strategies, want 4", x, len(vs))
		}
		min, max := vs[0], vs[0]
		for _, v := range vs {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max/min > 3 {
			t.Errorf("at %g cores strategy spread %.1fx too extreme for unstructured", x, max/min)
		}
	}
}

// Fig. 15: weak-scaling efficiency stays in (0, 1.05] and degrades by the
// last step.
func TestFig15Shape(t *testing.T) {
	pts := runExp(t, "fig15")
	for _, name := range []string{"reactor", "ball"} {
		s := series(pts, name)
		if len(s) < 3 {
			t.Fatalf("%s: want >= 3 points", name)
		}
		for _, p := range s {
			if p.Value <= 0 || p.Value > 1.05 {
				t.Errorf("%s: efficiency %v at %g cores out of range", name, p.Value, p.X)
			}
		}
		if s[len(s)-1].Value >= s[0].Value {
			t.Errorf("%s: weak-scaling efficiency should degrade: %+v", name, s)
		}
	}
}

// Fig. 16: idle share grows with core count; kernel dominates the busy
// categories.
func TestFig16Shape(t *testing.T) {
	pts := runExp(t, "fig16")
	idle := series(pts, "idle")
	kernel := series(pts, "kernel")
	if len(idle) != len(kernel) {
		t.Fatal("series length mismatch")
	}
	firstShare := idle[0].Value / (idle[0].Value + kernel[0].Value)
	lastShare := idle[len(idle)-1].Value / (idle[len(idle)-1].Value + kernel[len(kernel)-1].Value)
	if lastShare <= firstShare {
		t.Errorf("idle share should grow with cores: %.2f -> %.2f", firstShare, lastShare)
	}
	for i, k := range kernel {
		g := series(pts, "graph-op")[i]
		if g.Value >= k.Value {
			t.Errorf("graph-op (%v) should stay below kernel (%v)", g.Value, k.Value)
		}
	}
}

// Fig. 17: JSweep beats the BSP baseline at every core count, on both
// mesh families.
func TestFig17Shapes(t *testing.T) {
	for id, baseline := range map[string]string{"fig17a": "JASMIN", "fig17b": "JAUMIN"} {
		pts := runExp(t, id)
		js := series(pts, "JSweep")
		bl := series(pts, baseline)
		if len(js) == 0 || len(js) != len(bl) {
			t.Fatalf("%s: series mismatch", id)
		}
		for i := range js {
			if js[i].Value >= bl[i].Value {
				t.Errorf("%s at %g cores: JSweep (%v) not below %s (%v)",
					id, js[i].X, js[i].Value, baseline, bl[i].Value)
			}
		}
	}
}

// Table I: all efficiencies are valid fractions and JSweep's structured
// efficiency exceeds its unstructured one (as in the paper).
func TestTable1Shape(t *testing.T) {
	pts := runExp(t, "tab1")
	vals := map[string]float64{}
	for _, p := range pts {
		if p.Value <= 0 || p.Value > 1.01 {
			t.Errorf("%s: efficiency %v out of range", p.Series, p.Value)
		}
		vals[p.Series] = p.Value
	}
	if vals["JSweep-koba"] <= vals["JSweep-ball"] {
		t.Errorf("structured efficiency (%v) should exceed unstructured (%v)",
			vals["JSweep-koba"], vals["JSweep-ball"])
	}
}

// Coarsened-graph ablation: both the scheduling-event ratio and the wall
// ratio must favour the coarse graph.
func TestCoarseAblationShape(t *testing.T) {
	pts := runExp(t, "coarse")
	for _, p := range pts {
		if p.Value <= 1 {
			t.Errorf("%s: ratio %v should exceed 1", p.Series, p.Value)
		}
	}
}

func TestRealRuntimeExperiment(t *testing.T) {
	pts := runExp(t, "real")
	for _, p := range pts {
		if p.Value <= 0 {
			t.Errorf("wall time %v invalid", p.Value)
		}
	}
}

// The printed output must mention the experiment's key parameters.
func TestOutputMentionsSetup(t *testing.T) {
	e, _ := Find("fig12a")
	var sb strings.Builder
	if _, err := e.Run(Quick, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, needle := range []string{"Kobayashi", "cores", "efficiency"} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}
