package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"jsweep/internal/meshgen"
	"jsweep/internal/priority"
	"jsweep/internal/quadrature"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// CyclicLagging exercises the cycle-tolerant sweep path end to end on the
// twisted-ring torture meshes: per-angle SCC detection, deterministic
// feedback-edge selection and old-flux lagging through source iteration
// (Vermaak, Ragusa & Morel, arXiv:2004.01824). For each mesh size it
// verifies the parallel flux stays bitwise identical to the lagged serial
// reference and that the lagged iteration reaches the fine-tolerance fixed
// point, then reports the cycle structure, the iteration overhead the
// lagging costs (against an untwisted but otherwise identical ring) and
// the per-iteration wall time.
func CyclicLagging(f Fidelity, w io.Writer) ([]Point, error) {
	sizes := []int{300, 1200}
	switch f {
	case Standard:
		sizes = []int{1200, 5000, 20000}
	case Paper:
		sizes = []int{5000, 20000, 80000}
	}

	procs := 2
	workers := maxI(1, runtime.NumCPU()/procs-1)
	quad, err := quadrature.New(2)
	if err != nil {
		return nil, err
	}
	iterCfg := transport.IterConfig{Tolerance: 1e-8, MaxIterations: 400}

	fmt.Fprintf(w, "Cyclic-dependency sweeps (%s): %dp×%dw, %d angles, tol %.0e\n",
		f, procs, workers, quad.NumAngles(), iterCfg.Tolerance)
	fmt.Fprintf(w, "  %-12s %8s %8s %8s %8s %8s %9s %12s\n",
		"cells", "cellSCCs", "patchSCC", "lagged", "iters", "acyclic", "overhead", "ms/iter")

	var pts []Point
	for _, target := range sizes {
		m, err := meshgen.CyclicStackWithCells(target)
		if err != nil {
			return nil, err
		}
		d, err := meshgen.AzimuthalBlocks(m, 8)
		if err != nil {
			return nil, err
		}
		prob := &transport.Problem{
			M: m,
			Mats: []transport.Material{{
				Name:   "twisted",
				SigmaT: []float64{0.8},
				SigmaS: [][]float64{{0.3}},
				Source: []float64{1.0},
			}},
			Quad:   quad,
			Groups: 1,
			Scheme: transport.Step,
		}
		s, err := sweep.NewSolver(prob, d, sweep.Options{
			Procs: procs, Workers: workers, Grain: 8,
			Pair: priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
		})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := transport.SourceIterate(prob, s, iterCfg)
		wall := time.Since(t0).Seconds()
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("bench: cyclic %d cells: %w", m.NumCells(), err)
		}
		st := s.LastStats()
		s.Close()
		if !res.Converged {
			return nil, fmt.Errorf("bench: cyclic %d cells did not converge (residual %g)", m.NumCells(), res.Residual)
		}
		if st.LaggedEdges == 0 || st.CellSCCs == 0 || st.PatchSCCs == 0 {
			return nil, fmt.Errorf("bench: cyclic mesh reported no cycles (%+v)", st)
		}

		// Bitwise check against the lagged serial reference.
		ref, err := sweep.NewReference(prob)
		if err != nil {
			return nil, err
		}
		want, err := transport.SourceIterate(prob, ref, iterCfg)
		if err != nil {
			return nil, err
		}
		for g := range want.Phi {
			for c := range want.Phi[g] {
				if res.Phi[g][c] != want.Phi[g][c] {
					return nil, fmt.Errorf("bench: cyclic %d cells: flux diverges from lagged reference at group %d cell %d", m.NumCells(), g, c)
				}
			}
		}

		// Iteration overhead of the lagging: the same transport problem on
		// an untwisted (acyclic) ring of the same construction.
		acyclicIters, err := acyclicControlIters(m.NumCells(), quad, iterCfg)
		if err != nil {
			return nil, err
		}

		fmt.Fprintf(w, "  %-12d %8d %8d %8d %8d %8d %8.2fx %12.2f\n",
			m.NumCells(), st.CellSCCs, st.PatchSCCs, st.LaggedEdges,
			res.Iterations, acyclicIters,
			float64(res.Iterations)/float64(acyclicIters),
			1e3*wall/float64(res.Iterations))
		x := float64(m.NumCells())
		pts = append(pts,
			Point{Series: "iterations", X: x, Value: float64(res.Iterations)},
			Point{Series: "acyclic-iterations", X: x, Value: float64(acyclicIters)},
			Point{Series: "lagged-edges", X: x, Value: float64(st.LaggedEdges)},
			Point{Series: "cell-sccs", X: x, Value: float64(st.CellSCCs)},
			Point{Series: "patch-sccs", X: x, Value: float64(st.PatchSCCs)},
			Point{Series: "ms-per-iter", X: x, Value: 1e3 * wall / float64(res.Iterations)},
		)
	}
	return pts, nil
}

// acyclicControlIters solves the same material on an untwisted ring of at
// least targetCells tets (tilt 0 — identical construction, no cycles) and
// returns the source-iteration count.
func acyclicControlIters(targetCells int, quad *quadrature.Set, cfg transport.IterConfig) (int, error) {
	// Untwisted rings have no plane-crossing constraint; scale segments.
	nSeg := (targetCells + 2) / 3
	if nSeg < 3 {
		nSeg = 3
	}
	m, err := meshgen.TwistedRing(nSeg, 1.0, 2.0, 0.2, 0)
	if err != nil {
		return 0, err
	}
	prob := &transport.Problem{
		M: m,
		Mats: []transport.Material{{
			Name:   "untwisted",
			SigmaT: []float64{0.8},
			SigmaS: [][]float64{{0.3}},
			Source: []float64{1.0},
		}},
		Quad:   quad,
		Groups: 1,
		Scheme: transport.Step,
	}
	ref, err := sweep.NewReference(prob)
	if err != nil {
		return 0, err
	}
	if ref.LaggedEdges() != 0 {
		return 0, fmt.Errorf("bench: control ring unexpectedly cyclic")
	}
	res, err := transport.SourceIterate(prob, ref, cfg)
	if err != nil {
		return 0, err
	}
	return res.Iterations, nil
}
