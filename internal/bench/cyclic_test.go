package bench

import (
	"testing"
)

// Shape: the cyclic experiment must report cycles at every size, and the
// lagged iteration must cost more sweeps than the acyclic control (that
// is the price of cycle breaking) while still converging.
func TestCyclicLaggingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full solves")
	}
	pts := runExp(t, "cyclic")
	iters := series(pts, "iterations")
	control := series(pts, "acyclic-iterations")
	lagged := series(pts, "lagged-edges")
	if len(iters) == 0 || len(iters) != len(control) || len(iters) != len(lagged) {
		t.Fatalf("series shapes: iters=%d control=%d lagged=%d", len(iters), len(control), len(lagged))
	}
	for i := range iters {
		if lagged[i].Value <= 0 {
			t.Errorf("size %g: no lagged edges", lagged[i].X)
		}
		if iters[i].Value < control[i].Value {
			t.Errorf("size %g: lagged iterations %g below acyclic control %g", iters[i].X, iters[i].Value, control[i].Value)
		}
	}
}
