package bench

import (
	"io"
	"runtime"
	"testing"

	"jsweep/internal/geom"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/partition"
	"jsweep/internal/priority"
	"jsweep/internal/quadrature"
	rt "jsweep/internal/runtime"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

// uniformBallProblem wraps a ball mesh into a one-group uniform-material
// transport problem for real-runtime benchmarking.
func uniformBallProblem(m *mesh.Unstructured) (*transport.Problem, error) {
	quad, err := quadrature.New(2)
	if err != nil {
		return nil, err
	}
	return &transport.Problem{
		M: m,
		Mats: []transport.Material{{
			Name: "uniform", SigmaT: []float64{0.4},
			SigmaS: [][]float64{{0.1}}, Source: []float64{1.0},
		}},
		Quad: quad, Groups: 1, Scheme: transport.Step,
	}, nil
}

func ballDecomposition(m *mesh.Unstructured) (*mesh.Decomposition, error) {
	return partition.ByPatchSize(m, 300, partition.GreedyGraph)
}

func TestAggregationSweepExperiment(t *testing.T) {
	pts, err := AggregationSweep(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]int{}
	for _, p := range pts {
		series[p.Series]++
	}
	for _, s := range []string{"agg-off", "agg-makespan", "agg-batches", "real-agg-off", "real-agg-on"} {
		if series[s] == 0 {
			t.Errorf("experiment missing series %q (got %v)", s, series)
		}
	}
}

// benchStructuredSweep runs one real-runtime sweep of a small Kobayashi
// problem per iteration, with or without message aggregation.
func benchStructuredSweep(b *testing.B, agg bool) {
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: 16, SnOrder: 2, Scheme: transport.Diamond})
	if err != nil {
		b.Fatal(err)
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	benchSweep(b, prob, d, agg)
}

// benchUnstructuredSweep is the tetrahedral counterpart (a small ball).
func benchUnstructuredSweep(b *testing.B, agg bool) {
	m, err := meshgen.BallWithCells(3000, 10.0)
	if err != nil {
		b.Fatal(err)
	}
	m.SetMaterialFunc(func(geom.Vec3) int { return 0 })
	prob, err := uniformBallProblem(m)
	if err != nil {
		b.Fatal(err)
	}
	d, err := ballDecomposition(m)
	if err != nil {
		b.Fatal(err)
	}
	benchSweep(b, prob, d, agg)
}

func benchSweep(b *testing.B, prob *transport.Problem, d *mesh.Decomposition, agg bool) {
	b.Helper()
	q := flatSource(prob)
	procs := 4
	workers := maxI(1, runtime.NumCPU()/procs-1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := sweep.NewSolver(prob, d, sweep.Options{
			Procs: procs, Workers: workers, Grain: 64,
			Pair:        priority.Pair{Patch: priority.SLBD, Vertex: priority.SLBD},
			Aggregation: rt.AggregationConfig{Enabled: agg},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Sweep(q); err != nil {
			b.Fatal(err)
		}
		st := s.LastStats().Runtime
		if agg && st.BatchesSent >= st.RemoteStreams {
			b.Fatalf("aggregation not coalescing: batches=%d remote=%d", st.BatchesSent, st.RemoteStreams)
		}
		b.ReportMetric(float64(st.Messages), "msgs/sweep")
	}
}

func BenchmarkSweepStructuredUnaggregated(b *testing.B) { benchStructuredSweep(b, false) }
func BenchmarkSweepStructuredAggregated(b *testing.B)   { benchStructuredSweep(b, true) }

func BenchmarkSweepUnstructuredUnaggregated(b *testing.B) { benchUnstructuredSweep(b, false) }
func BenchmarkSweepUnstructuredAggregated(b *testing.B)   { benchUnstructuredSweep(b, true) }
