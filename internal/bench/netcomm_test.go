package bench

import (
	"io"
	"testing"
)

// TestNetBackendQuick runs the transport-backend comparison at quick
// fidelity: both backends must solve, aggregation must coalesce on both,
// and the flux bit pattern must be identical across all four runs (the
// experiment itself enforces these and errors otherwise).
func TestNetBackendQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-transport solve skipped in -short mode")
	}
	pts, err := NetBackend(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]float64{}
	for _, p := range pts {
		series[p.Series] = p.Value
	}
	if series["tcp-agg-false-wire-frames"] == 0 || series["tcp-agg-true-wire-frames"] == 0 {
		t.Fatalf("TCP rows recorded no wire frames: %v", series)
	}
	if series["tcp-agg-true-wire-frames"] >= series["tcp-agg-false-wire-frames"] {
		t.Fatalf("aggregation did not reduce wire frames: %.0f vs %.0f",
			series["tcp-agg-true-wire-frames"], series["tcp-agg-false-wire-frames"])
	}
	if series["mem-agg-false-wire-frames"] != 0 {
		t.Fatalf("in-memory backend reported wire frames: %v", series["mem-agg-false-wire-frames"])
	}
}
