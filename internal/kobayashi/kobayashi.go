// Package kobayashi builds the Kobayashi benchmark transport problems the
// paper's structured-mesh evaluation uses (JSNT-S on "Kobayashi-400" and
// "Kobayashi-800", §VI-A). The geometry follows Kobayashi problem 1: a
// cubic domain with a source region in the corner, a void duct, and an
// absorbing shield; the paper scales the mesh to 400³ / 800³ cells with
// 320 angular directions.
package kobayashi

import (
	"fmt"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/quadrature"
	"jsweep/internal/transport"
)

// Material zone ids produced by Build.
const (
	ZoneSource = 0 // 10×10×10 cm source corner: σt = 0.1, S = 1
	ZoneVoid   = 1 // void duct: σt = 1e-4
	ZoneShield = 2 // shield: σt = 0.1
)

// Spec parameterizes a Kobayashi-style problem.
type Spec struct {
	// N is the mesh resolution per axis (e.g. 400 for Kobayashi-400).
	N int
	// SnOrder selects the quadrature (the paper's 320 directions
	// correspond to S16 with 16·18 = 288... the closest LQn set; callers
	// pick the order they can afford).
	SnOrder int
	// Scattering enables 50% scattering (c = 0.5) in source and shield,
	// matching the "with scattering" benchmark variant the paper solves.
	Scattering bool
	// Scheme selects the spatial differencing (Diamond is the classic
	// choice on structured grids).
	Scheme transport.Scheme
}

// Extent is the cube edge length [cm] of the benchmark domain.
const Extent = 100.0

// Build constructs the mesh and transport problem.
func Build(spec Spec) (*transport.Problem, *mesh.Structured3D, error) {
	if spec.N < 2 {
		return nil, nil, fmt.Errorf("kobayashi: resolution %d too small", spec.N)
	}
	if spec.SnOrder == 0 {
		spec.SnOrder = 4
	}
	m, err := mesh.NewStructured3D(spec.N, spec.N, spec.N,
		geom.Vec3{}, geom.Vec3{X: Extent, Y: Extent, Z: Extent})
	if err != nil {
		return nil, nil, err
	}
	m.SetMaterialFunc(Zone)
	quad, err := quadrature.New(spec.SnOrder)
	if err != nil {
		return nil, nil, err
	}
	var scat float64
	if spec.Scattering {
		scat = 0.5
	}
	mats := []transport.Material{
		{
			Name:   "source",
			SigmaT: []float64{0.1},
			SigmaS: [][]float64{{0.1 * scat}},
			Source: []float64{1.0},
		},
		{
			Name:   "void",
			SigmaT: []float64{1e-4},
			SigmaS: [][]float64{{0}},
		},
		{
			Name:   "shield",
			SigmaT: []float64{0.1},
			SigmaS: [][]float64{{0.1 * scat}},
		},
	}
	prob := &transport.Problem{
		M:      m,
		Mats:   mats,
		Quad:   quad,
		Groups: 1,
		Scheme: spec.Scheme,
	}
	if err := prob.Validate(); err != nil {
		return nil, nil, err
	}
	return prob, m, nil
}

// Zone maps a point to its Kobayashi problem-1 material zone: the source
// occupies [0,10]³, an L-shaped void duct runs along the x axis and turns
// up in y, everything else is shield.
func Zone(p geom.Vec3) int {
	in := func(x0, x1, y0, y1, z0, z1 float64) bool {
		return p.X >= x0 && p.X < x1 && p.Y >= y0 && p.Y < y1 && p.Z >= z0 && p.Z < z1
	}
	switch {
	case in(0, 10, 0, 10, 0, 10):
		return ZoneSource
	case in(10, 60, 0, 10, 0, 10): // duct leg along +x
		return ZoneVoid
	case in(50, 60, 10, 60, 0, 10): // duct turn along +y
		return ZoneVoid
	case in(50, 60, 50, 60, 10, 60): // duct rise along +z
		return ZoneVoid
	default:
		return ZoneShield
	}
}
