package kobayashi

import (
	"testing"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/transport"
)

func TestZoneGeometry(t *testing.T) {
	cases := []struct {
		p    geom.Vec3
		want int
	}{
		{geom.Vec3{X: 5, Y: 5, Z: 5}, ZoneSource},
		{geom.Vec3{X: 9.9, Y: 9.9, Z: 9.9}, ZoneSource},
		{geom.Vec3{X: 30, Y: 5, Z: 5}, ZoneVoid},   // duct leg +x
		{geom.Vec3{X: 55, Y: 30, Z: 5}, ZoneVoid},  // duct turn +y
		{geom.Vec3{X: 55, Y: 55, Z: 30}, ZoneVoid}, // duct rise +z
		{geom.Vec3{X: 30, Y: 30, Z: 30}, ZoneShield},
		{geom.Vec3{X: 90, Y: 90, Z: 90}, ZoneShield},
		{geom.Vec3{X: 5, Y: 50, Z: 5}, ZoneShield},
	}
	for _, tc := range cases {
		if got := Zone(tc.p); got != tc.want {
			t.Errorf("Zone(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestBuildZonesPresent(t *testing.T) {
	prob, m, err := Build(Spec{N: 20, SnOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for c := 0; c < m.NumCells(); c++ {
		seen[prob.M.Material(mesh.CellID(c))]++
	}
	if seen[ZoneSource] == 0 || seen[ZoneVoid] == 0 || seen[ZoneShield] == 0 {
		t.Fatalf("zone histogram %v missing a zone", seen)
	}
	// Source occupies (10/100)³ = 0.1% of the volume → 8 cells at N=20.
	if seen[ZoneSource] != 8 {
		t.Errorf("source cells = %d, want 8", seen[ZoneSource])
	}
}

func TestBuildScatteringVariants(t *testing.T) {
	pure, _, err := Build(Spec{N: 8, SnOrder: 2, Scattering: false})
	if err != nil {
		t.Fatal(err)
	}
	if pure.HasScattering() {
		t.Error("non-scattering build scatters")
	}
	scat, _, err := Build(Spec{N: 8, SnOrder: 2, Scattering: true})
	if err != nil {
		t.Fatal(err)
	}
	if !scat.HasScattering() {
		t.Error("scattering build does not scatter")
	}
	// c = σs/σt = 0.5 in the source zone.
	m := scat.Mats[ZoneSource]
	if m.SigmaS[0][0]/m.SigmaT[0] != 0.5 {
		t.Errorf("scattering ratio = %v, want 0.5", m.SigmaS[0][0]/m.SigmaT[0])
	}
}

func TestBuildValidation(t *testing.T) {
	if _, _, err := Build(Spec{N: 1}); err == nil {
		t.Error("tiny N should fail")
	}
	if _, _, err := Build(Spec{N: 8, SnOrder: 3}); err == nil {
		t.Error("odd Sn order should fail")
	}
}

func TestBuildDefaultOrder(t *testing.T) {
	prob, _, err := Build(Spec{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if prob.Quad.NumAngles() != 24 {
		t.Errorf("default quadrature angles = %d, want 24 (S4)", prob.Quad.NumAngles())
	}
	if prob.Scheme != transport.Step {
		// Scheme defaults to Step (zero value) unless requested.
		t.Errorf("unexpected default scheme %v", prob.Scheme)
	}
}
