package partition

import (
	"testing"
	"testing/quick"

	"jsweep/internal/geom"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
)

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 0x1fffff
		y &= 0x1fffff
		z &= 0x1fffff
		gx, gy, gz := MortonDecode3D(MortonEncode3D(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMortonOrderIsZCurve(t *testing.T) {
	// First eight codes of the unit cube follow the Z pattern.
	want := [][3]uint32{
		{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
	}
	for code, w := range want {
		x, y, z := MortonDecode3D(uint64(code))
		if x != w[0] || y != w[1] || z != w[2] {
			t.Errorf("code %d -> (%d,%d,%d), want %v", code, x, y, z, w)
		}
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	const order = 5
	f := func(x, y, z uint32) bool {
		x %= 1 << order
		y %= 1 << order
		z %= 1 << order
		gx, gy, gz := HilbertDecode3D(HilbertEncode3D(x, y, z, order), order)
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestHilbertIsBijective(t *testing.T) {
	const order = 3
	n := 1 << order
	seen := make(map[uint64]bool)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				code := HilbertEncode3D(uint32(x), uint32(y), uint32(z), order)
				if code >= uint64(n*n*n) {
					t.Fatalf("code %d out of range", code)
				}
				if seen[code] {
					t.Fatalf("duplicate code %d", code)
				}
				seen[code] = true
			}
		}
	}
}

// The Hilbert curve visits lattice points in unit steps (no jumps): the key
// locality property over Morton.
func TestHilbertContinuity(t *testing.T) {
	const order = 4
	n := 1 << order
	total := uint64(n * n * n)
	px, py, pz := HilbertDecode3D(0, order)
	for code := uint64(1); code < total; code++ {
		x, y, z := HilbertDecode3D(code, order)
		d := absDiff(x, px) + absDiff(y, py) + absDiff(z, pz)
		if d != 1 {
			t.Fatalf("step %d: Manhattan distance %d, want 1 (from %d,%d,%d to %d,%d,%d)",
				code, d, px, py, pz, x, y, z)
		}
		px, py, pz = x, y, z
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestOrderBlocksIsPermutation(t *testing.T) {
	for _, kind := range []SFCKind{Morton, Hilbert} {
		ord := OrderBlocks(kind, 3, 4, 5)
		if len(ord) != 60 {
			t.Fatalf("%v: length %d, want 60", kind, len(ord))
		}
		seen := make([]bool, 60)
		for _, id := range ord {
			if id < 0 || id >= 60 || seen[id] {
				t.Fatalf("%v: not a permutation", kind)
			}
			seen[id] = true
		}
	}
}

func ballMesh(t *testing.T) *mesh.Unstructured {
	t.Helper()
	m, err := meshgen.Ball(8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRCBBalanceAndCoverage(t *testing.T) {
	m := ballMesh(t)
	for _, np := range []int{2, 3, 7, 16} {
		d, err := ByCount(m, np, RCB)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumPatches() != np {
			t.Fatalf("np=%d: patches = %d", np, d.NumPatches())
		}
		if b := d.Balance(); b > 1.05 {
			t.Errorf("np=%d: RCB balance = %v, want <= 1.05", np, b)
		}
	}
}

func TestGreedyGraphBalanceAndCoverage(t *testing.T) {
	m := ballMesh(t)
	for _, np := range []int{2, 5, 12} {
		d, err := ByCount(m, np, GreedyGraph)
		if err != nil {
			t.Fatal(err)
		}
		if b := d.Balance(); b > 1.30 {
			t.Errorf("np=%d: greedy balance = %v, want <= 1.30", np, b)
		}
	}
}

func TestByPatchSize(t *testing.T) {
	m := ballMesh(t)
	d, err := ByPatchSize(m, 100, RCB)
	if err != nil {
		t.Fatal(err)
	}
	want := (m.NumCells() + 99) / 100
	if d.NumPatches() != want {
		t.Errorf("patches = %d, want %d", d.NumPatches(), want)
	}
}

func TestPartitionAssignmentProperty(t *testing.T) {
	m := ballMesh(t)
	f := func(seed uint8) bool {
		np := 2 + int(seed)%14
		d, err := ByCount(m, np, RCB)
		if err != nil {
			return false
		}
		// Every cell assigned exactly once, local indices consistent.
		count := 0
		for p := 0; p < d.NumPatches(); p++ {
			count += len(d.Cells[p])
		}
		return count == m.NumCells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Greedy graph growing should produce a lower edge cut than a scattered
// (round-robin) partition of the same mesh.
func TestGreedyCutBeatsRoundRobin(t *testing.T) {
	m := ballMesh(t)
	const np = 8
	d, err := ByCount(m, np, GreedyGraph)
	if err != nil {
		t.Fatal(err)
	}
	rr := make([]mesh.PatchID, m.NumCells())
	for c := range rr {
		rr[c] = mesh.PatchID(c % np)
	}
	drr, err := mesh.NewDecomposition(m, rr, np)
	if err != nil {
		t.Fatal(err)
	}
	if d.EdgeCut() >= drr.EdgeCut() {
		t.Errorf("greedy cut %d >= round-robin cut %d", d.EdgeCut(), drr.EdgeCut())
	}
}

func TestRCBOnStructuredMesh(t *testing.T) {
	sm, err := mesh.NewStructured3D(8, 8, 8, geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ByCount(sm, 8, RCB)
	if err != nil {
		t.Fatal(err)
	}
	if b := d.Balance(); b != 1 {
		t.Errorf("RCB on uniform grid: balance = %v, want exactly 1", b)
	}
}

func TestPartitionErrors(t *testing.T) {
	m := ballMesh(t)
	if _, err := ByCount(m, 0, RCB); err == nil {
		t.Error("zero patches should fail")
	}
	if _, err := ByCount(m, m.NumCells()+1, RCB); err == nil {
		t.Error("more patches than cells should fail")
	}
	if _, err := ByPatchSize(m, 0, RCB); err == nil {
		t.Error("zero patch size should fail")
	}
	if _, err := ByCount(m, 4, Method(99)); err == nil {
		t.Error("unknown method should fail")
	}
}
