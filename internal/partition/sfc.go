// Package partition provides the spatial domain-decomposition substrate:
// Morton and Hilbert space-filling curves for structured block meshes, and
// recursive coordinate bisection plus a greedy graph-growing partitioner
// (METIS/Chaco stand-ins, paper §V-A) for unstructured meshes.
package partition

import "sort"

// MortonEncode3D interleaves the low 21 bits of x, y, z into a 63-bit
// Morton (Z-order) code: bit i of x lands at bit 3i.
func MortonEncode3D(x, y, z uint32) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

// MortonDecode3D inverts MortonEncode3D.
func MortonDecode3D(code uint64) (x, y, z uint32) {
	return compact(code), compact(code >> 1), compact(code >> 2)
}

// spread distributes the low 21 bits of v so consecutive bits are 3 apart.
func spread(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact is the inverse of spread.
func compact(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x1f0000ff0000ff
	x = (x ^ x>>16) & 0x1f00000000ffff
	x = (x ^ x>>32) & 0x1fffff
	return uint32(x)
}

// HilbertEncode3D maps the point (x,y,z) on a 2^order lattice to its index
// along the 3-D Hilbert curve of that order. Implementation follows the
// classic Butz/Lawder transpose algorithm.
func HilbertEncode3D(x, y, z uint32, order uint) uint64 {
	X := [3]uint32{x, y, z}
	// Inverse undo of excess work: Gray decode.
	m := uint32(1) << (order - 1)
	// Transform Cartesian coordinates into transposed Hilbert coordinates.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if X[i]&q != 0 {
				X[0] ^= p
			} else {
				t := (X[0] ^ X[i]) & p
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	for i := 1; i < 3; i++ {
		X[i] ^= X[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if X[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		X[i] ^= t
	}
	// Interleave transposed coordinates into the final index: bit b of
	// axis i contributes to bit 3b+(2-i).
	var code uint64
	for b := uint(0); b < order; b++ {
		for i := 0; i < 3; i++ {
			bit := (X[i] >> b) & 1
			code |= uint64(bit) << (3*b + uint(2-i))
		}
	}
	return code
}

// HilbertDecode3D inverts HilbertEncode3D.
func HilbertDecode3D(code uint64, order uint) (x, y, z uint32) {
	var X [3]uint32
	for b := uint(0); b < order; b++ {
		for i := 0; i < 3; i++ {
			bit := uint32(code>>(3*b+uint(2-i))) & 1
			X[i] |= bit << b
		}
	}
	// Gray decode.
	n := uint32(2) << (order - 1)
	t := X[2] >> 1
	for i := 2; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := 2; i >= 0; i-- {
			if X[i]&q != 0 {
				X[0] ^= p
			} else {
				tt := (X[0] ^ X[i]) & p
				X[0] ^= tt
				X[i] ^= tt
			}
		}
	}
	return X[0], X[1], X[2]
}

// SFCKind selects a space-filling curve.
type SFCKind int

const (
	// Morton is the Z-order curve.
	Morton SFCKind = iota
	// Hilbert is the Hilbert curve (better locality, no jumps).
	Hilbert
)

func (k SFCKind) String() string {
	if k == Hilbert {
		return "hilbert"
	}
	return "morton"
}

type sfcEntry struct {
	key uint64
	id  int
}

// OrderBlocks returns a permutation of the bx×by×bz block lattice following
// the chosen curve: result[r] is the block id (i + bx*(j + by*k)) at curve
// rank r. Block decompositions placed in this order keep neighbouring
// patches on the same process.
func OrderBlocks(kind SFCKind, bx, by, bz int) []int {
	n := bx * by * bz
	entries := make([]sfcEntry, 0, n)
	var order uint = 1
	for (1 << order) < maxInt(bx, maxInt(by, bz)) {
		order++
	}
	for k := 0; k < bz; k++ {
		for j := 0; j < by; j++ {
			for i := 0; i < bx; i++ {
				var key uint64
				if kind == Hilbert {
					key = HilbertEncode3D(uint32(i), uint32(j), uint32(k), order)
				} else {
					key = MortonEncode3D(uint32(i), uint32(j), uint32(k))
				}
				entries = append(entries, sfcEntry{key: key, id: i + bx*(j+by*k)})
			}
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].key < entries[b].key })
	out := make([]int, n)
	for r, e := range entries {
		out[r] = e.id
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
