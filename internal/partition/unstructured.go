package partition

import (
	"container/heap"
	"fmt"
	"sort"

	"jsweep/internal/mesh"
)

// Method selects an unstructured partitioning algorithm.
type Method int

const (
	// RCB is recursive coordinate bisection on cell centroids: balanced,
	// geometrically compact patches, patch ids in recursion order (spatially
	// local).
	RCB Method = iota
	// GreedyGraph grows patches one at a time along the cell adjacency
	// graph (Chaco/METIS-flavoured graph growing): contiguous patches with
	// low edge cut.
	GreedyGraph
)

func (m Method) String() string {
	if m == GreedyGraph {
		return "greedy-graph"
	}
	return "rcb"
}

// ByPatchSize decomposes an unstructured mesh into patches of roughly
// patchSize cells using the given method. The number of patches is
// ceil(numCells/patchSize).
func ByPatchSize(m mesh.Mesh, patchSize int, method Method) (*mesh.Decomposition, error) {
	if patchSize < 1 {
		return nil, fmt.Errorf("partition: patch size must be >= 1 (got %d)", patchSize)
	}
	numPatches := (m.NumCells() + patchSize - 1) / patchSize
	return ByCount(m, numPatches, method)
}

// ByCount decomposes a mesh into exactly numPatches patches.
func ByCount(m mesh.Mesh, numPatches int, method Method) (*mesh.Decomposition, error) {
	if numPatches < 1 {
		return nil, fmt.Errorf("partition: need >= 1 patch (got %d)", numPatches)
	}
	if numPatches > m.NumCells() {
		return nil, fmt.Errorf("partition: %d patches for %d cells", numPatches, m.NumCells())
	}
	var assign []mesh.PatchID
	switch method {
	case RCB:
		assign = rcbAssign(m, numPatches)
	case GreedyGraph:
		assign = greedyAssign(m, numPatches)
	default:
		return nil, fmt.Errorf("partition: unknown method %d", method)
	}
	return mesh.NewDecomposition(m, assign, numPatches)
}

// rcbAssign recursively bisects the cell set along the longest axis of its
// bounding box, splitting counts proportionally so any patch count (not
// just powers of two) balances.
func rcbAssign(m mesh.Mesh, numPatches int) []mesh.PatchID {
	cells := make([]mesh.CellID, m.NumCells())
	for i := range cells {
		cells[i] = mesh.CellID(i)
	}
	assign := make([]mesh.PatchID, m.NumCells())
	nextPatch := mesh.PatchID(0)
	var rec func(set []mesh.CellID, parts int)
	rec = func(set []mesh.CellID, parts int) {
		if parts == 1 {
			for _, c := range set {
				assign[c] = nextPatch
			}
			nextPatch++
			return
		}
		// Split parts as evenly as possible; cell counts proportional.
		lparts := parts / 2
		rparts := parts - lparts
		// Pick the longest axis of this subset's bounding box.
		bb := boundsOf(m, set)
		axis := bb.LongestAxis()
		sort.Slice(set, func(i, j int) bool {
			return coord(m, set[i], axis) < coord(m, set[j], axis)
		})
		cut := len(set) * lparts / parts
		rec(set[:cut], lparts)
		rec(set[cut:], rparts)
	}
	rec(cells, numPatches)
	return assign
}

func boundsOf(m mesh.Mesh, set []mesh.CellID) boundsBox {
	bb := boundsBox{}
	first := true
	for _, c := range set {
		p := m.CellCenter(c)
		if first {
			bb.min, bb.max = p, p
			first = false
			continue
		}
		if p.X < bb.min.X {
			bb.min.X = p.X
		}
		if p.Y < bb.min.Y {
			bb.min.Y = p.Y
		}
		if p.Z < bb.min.Z {
			bb.min.Z = p.Z
		}
		if p.X > bb.max.X {
			bb.max.X = p.X
		}
		if p.Y > bb.max.Y {
			bb.max.Y = p.Y
		}
		if p.Z > bb.max.Z {
			bb.max.Z = p.Z
		}
	}
	return bb
}

type boundsBox struct {
	min, max struct{ X, Y, Z float64 }
}

func (b boundsBox) LongestAxis() int {
	ex := b.max.X - b.min.X
	ey := b.max.Y - b.min.Y
	ez := b.max.Z - b.min.Z
	switch {
	case ex >= ey && ex >= ez:
		return 0
	case ey >= ez:
		return 1
	default:
		return 2
	}
}

func coord(m mesh.Mesh, c mesh.CellID, axis int) float64 {
	p := m.CellCenter(c)
	switch axis {
	case 0:
		return p.X
	case 1:
		return p.Y
	default:
		return p.Z
	}
}

// greedyAssign grows patches along the adjacency graph: starting from a
// boundary seed, each patch absorbs the frontier cell with the most
// already-assigned neighbours (minimizing new cut edges), until its size
// quota is met; the next seed is an unassigned cell adjacent to the grown
// region (keeping patch ids spatially ordered).
func greedyAssign(m mesh.Mesh, numPatches int) []mesh.PatchID {
	n := m.NumCells()
	assign := make([]mesh.PatchID, n)
	for i := range assign {
		assign[i] = -1
	}
	remaining := n
	assigned := 0
	seed := mesh.CellID(0) // deterministic first seed
	var nextSeeds []mesh.CellID

	for p := 0; p < numPatches; p++ {
		quota := (n - assigned + (numPatches - p - 1)) / (numPatches - p)
		// Find a seed: preferred from nextSeeds (frontier of previous
		// patch), else first unassigned cell.
		for assign[seed] != -1 {
			if len(nextSeeds) > 0 {
				seed = nextSeeds[len(nextSeeds)-1]
				nextSeeds = nextSeeds[:len(nextSeeds)-1]
				continue
			}
			// Linear scan fallback.
			found := false
			for c := 0; c < n; c++ {
				if assign[c] == -1 {
					seed = mesh.CellID(c)
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
		if assign[seed] != -1 {
			break
		}
		// Grow with a max-heap keyed by #assigned-to-this-patch neighbours.
		h := &cellHeap{}
		heap.Init(h)
		inHeap := make(map[mesh.CellID]bool)
		heap.Push(h, cellPrio{cell: seed, prio: 0})
		inHeap[seed] = true
		size := 0
		for size < quota {
			if h.Len() == 0 {
				// Disconnected frontier: restart growth from the next
				// unassigned cell so the quota still fills.
				restart := mesh.CellID(-1)
				for c := 0; c < n; c++ {
					if assign[c] == -1 {
						restart = mesh.CellID(c)
						break
					}
				}
				if restart < 0 {
					break
				}
				heap.Push(h, cellPrio{cell: restart, prio: 0})
				inHeap[restart] = true
			}
			top := heap.Pop(h).(cellPrio)
			c := top.cell
			if assign[c] != -1 {
				continue
			}
			assign[c] = mesh.PatchID(p)
			size++
			assigned++
			nf := m.NumFaces(c)
			for i := 0; i < nf; i++ {
				f := m.Face(c, i)
				if f.Neighbor < 0 {
					continue
				}
				nb := f.Neighbor
				if assign[nb] == -1 && !inHeap[nb] {
					heap.Push(h, cellPrio{cell: nb, prio: gain(m, nb, assign, mesh.PatchID(p))})
					inHeap[nb] = true
				}
			}
		}
		// Remaining heap entries are the frontier — candidate seeds for the
		// next patch.
		for h.Len() > 0 {
			c := heap.Pop(h).(cellPrio).cell
			if assign[c] == -1 {
				nextSeeds = append(nextSeeds, c)
			}
		}
		remaining -= size
		_ = remaining
	}
	// Mop up any stragglers (disconnected components): attach to the
	// neighbouring patch, or the last patch if isolated.
	for c := 0; c < n; c++ {
		if assign[c] != -1 {
			continue
		}
		target := mesh.PatchID(numPatches - 1)
		nf := m.NumFaces(mesh.CellID(c))
		for i := 0; i < nf; i++ {
			f := m.Face(mesh.CellID(c), i)
			if f.Neighbor >= 0 && assign[f.Neighbor] != -1 {
				target = assign[f.Neighbor]
				break
			}
		}
		assign[c] = target
	}
	return assign
}

func gain(m mesh.Mesh, c mesh.CellID, assign []mesh.PatchID, p mesh.PatchID) int {
	g := 0
	nf := m.NumFaces(c)
	for i := 0; i < nf; i++ {
		f := m.Face(c, i)
		if f.Neighbor >= 0 && assign[f.Neighbor] == p {
			g++
		}
	}
	return g
}

type cellPrio struct {
	cell mesh.CellID
	prio int
}

type cellHeap []cellPrio

func (h cellHeap) Len() int { return len(h) }
func (h cellHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio // max-heap on gain
	}
	return h[i].cell < h[j].cell // deterministic tie-break
}
func (h cellHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x interface{}) { *h = append(*h, x.(cellPrio)) }
func (h *cellHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
