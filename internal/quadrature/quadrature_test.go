package quadrature

import (
	"math"
	"testing"
)

func TestLevelSymmetricCounts(t *testing.T) {
	for _, order := range []int{2, 4, 6, 8, 12, 16} {
		s, err := NewLevelSymmetric(order)
		if err != nil {
			t.Fatalf("S%d: %v", order, err)
		}
		want := order * (order + 2)
		if s.NumAngles() != want {
			t.Errorf("S%d: %d angles, want N(N+2)=%d", order, s.NumAngles(), want)
		}
		if s.PerOctant() != want/8 {
			t.Errorf("S%d: %d per octant, want %d", order, s.PerOctant(), want/8)
		}
	}
}

func TestS2HasEightAngles(t *testing.T) {
	s, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAngles() != 8 {
		t.Errorf("S2 angles = %d, want 8 (paper uses S2 = 8 directions)", s.NumAngles())
	}
}

func TestS4HasTwentyFourAngles(t *testing.T) {
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAngles() != 24 {
		t.Errorf("S4 angles = %d, want 24 (paper: #angles = 24 (S4))", s.NumAngles())
	}
}

func TestWeightsSumTo4Pi(t *testing.T) {
	for _, order := range []int{2, 4, 6, 8, 12, 16} {
		s, err := NewLevelSymmetric(order)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.TotalWeight(); math.Abs(got-4*math.Pi) > 1e-9 {
			t.Errorf("S%d total weight = %v, want 4π", order, got)
		}
	}
}

func TestDirectionsAreUnit(t *testing.T) {
	for _, order := range []int{2, 4, 8, 16} {
		s, err := NewLevelSymmetric(order)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range s.Directions {
			if math.Abs(d.Omega.Norm()-1) > 1e-9 {
				t.Fatalf("S%d dir %d: |Ω| = %v, want 1", order, i, d.Omega.Norm())
			}
		}
	}
}

func TestOctantSigns(t *testing.T) {
	s, err := NewLevelSymmetric(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range s.Directions {
		wantNegX := d.Octant&1 != 0
		wantNegY := d.Octant&2 != 0
		wantNegZ := d.Octant&4 != 0
		if (d.Omega.X < 0) != wantNegX || (d.Omega.Y < 0) != wantNegY || (d.Omega.Z < 0) != wantNegZ {
			t.Fatalf("dir %d: octant %d inconsistent with Ω=%v", i, d.Octant, d.Omega)
		}
	}
}

// First angular moment of a constant must vanish: ∑ w Ω = 0 by symmetry.
func TestFirstMomentVanishes(t *testing.T) {
	for _, order := range []int{2, 4, 6, 8, 12, 16} {
		s, err := NewLevelSymmetric(order)
		if err != nil {
			t.Fatal(err)
		}
		var mx, my, mz float64
		for _, d := range s.Directions {
			mx += d.Weight * d.Omega.X
			my += d.Weight * d.Omega.Y
			mz += d.Weight * d.Omega.Z
		}
		if math.Abs(mx) > 1e-9 || math.Abs(my) > 1e-9 || math.Abs(mz) > 1e-9 {
			t.Errorf("S%d first moment = (%g,%g,%g), want 0", order, mx, my, mz)
		}
	}
}

// Second moment: ∑ w μ² = 4π/3 for a correct quadrature (integrates Ω_x²
// over the sphere).
func TestSecondMoment(t *testing.T) {
	for _, order := range []int{4, 8, 16} {
		s, err := NewLevelSymmetric(order)
		if err != nil {
			t.Fatal(err)
		}
		var m2 float64
		for _, d := range s.Directions {
			m2 += d.Weight * d.Omega.X * d.Omega.X
		}
		want := 4 * math.Pi / 3
		if math.Abs(m2-want)/want > 1e-6 {
			t.Errorf("S%d ∑wμ² = %v, want %v", order, m2, want)
		}
	}
}

func TestProductQuadrature(t *testing.T) {
	s, err := NewProductGaussChebyshev(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAngles() != 8*3*4 {
		t.Errorf("angles = %d, want 96", s.NumAngles())
	}
	if math.Abs(s.TotalWeight()-4*math.Pi) > 1e-9 {
		t.Errorf("total weight = %v, want 4π", s.TotalWeight())
	}
	for _, d := range s.Directions {
		if math.Abs(d.Omega.Norm()-1) > 1e-9 {
			t.Fatalf("|Ω| = %v, want 1", d.Omega.Norm())
		}
	}
}

func TestProductQuadratureSecondMoment(t *testing.T) {
	s, err := NewProductGaussChebyshev(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	var m2 float64
	for _, d := range s.Directions {
		m2 += d.Weight * d.Omega.Z * d.Omega.Z
	}
	want := 4 * math.Pi / 3
	if math.Abs(m2-want)/want > 1e-6 {
		t.Errorf("∑wξ² = %v, want %v", m2, want)
	}
}

func TestNewFallback(t *testing.T) {
	// S10 has no level-symmetric table entry; New must fall back.
	s, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAngles() == 0 {
		t.Error("fallback produced empty set")
	}
	if math.Abs(s.TotalWeight()-4*math.Pi) > 1e-9 {
		t.Errorf("fallback total weight = %v, want 4π", s.TotalWeight())
	}
}

func TestNewRejectsBadOrders(t *testing.T) {
	for _, order := range []int{0, -2, 3, 7} {
		if _, err := New(order); err == nil {
			t.Errorf("New(%d) should fail", order)
		}
	}
}

func TestGaussLegendreIntegratesPolynomials(t *testing.T) {
	// n-point GL is exact for degree 2n-1 on (0,1): ∫ x³ dx = 1/4 with n=2.
	nodes, weights := gaussLegendre(2)
	var got float64
	for i := range nodes {
		got += weights[i] * nodes[i] * nodes[i] * nodes[i]
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("∫x³ = %v, want 0.25", got)
	}
}
