// Package quadrature provides discrete-ordinates (Sn) angular quadrature
// sets. A quadrature set is a list of unit direction vectors Ω_m with
// positive weights w_m that integrate functions over the unit sphere:
// ∑ w_m f(Ω_m) ≈ ∫_{4π} f(Ω) dΩ.
//
// Level-symmetric sets are provided for even N up to 16; they are the sets
// Sn transport codes such as TORT/JSNT use. An Sn set in 3-D has N(N+2)
// directions, N(N+2)/8 per octant (so S2 has 8 angles, S4 has 24 — the
// counts the JSweep paper quotes).
package quadrature

import (
	"fmt"
	"math"

	"jsweep/internal/geom"
)

// Direction is a single discrete ordinate.
type Direction struct {
	// Omega is the unit direction vector (μ, η, ξ).
	Omega geom.Vec3
	// Weight is the quadrature weight. Weights of a set sum to 4π.
	Weight float64
	// Octant ∈ [0,8) encodes the sign pattern: bit0 = μ<0, bit1 = η<0,
	// bit2 = ξ<0.
	Octant int
}

// Set is a complete angular quadrature set.
type Set struct {
	// Order is the Sn order N (even, ≥ 2).
	Order int
	// Directions holds all N(N+2) ordinates, grouped by octant.
	Directions []Direction
}

// NumAngles returns the number of discrete ordinates in the set.
func (s *Set) NumAngles() int { return len(s.Directions) }

// PerOctant returns the number of ordinates per octant.
func (s *Set) PerOctant() int { return len(s.Directions) / 8 }

// levelSymMu1 lists the first positive μ-level of the standard
// level-symmetric (LQn) quadrature sets (Lewis & Miller, Table 4-1). The
// remaining levels follow from the defining recurrence
// μ_i² = μ_1² + (i-1)·Δ with Δ = 2(1-3μ_1²)/(N-2), which guarantees that
// any ordinate with level indices i+j+k = N/2+2 is exactly a unit vector.
var levelSymMu1 = map[int]float64{
	2:  0.5773502691896257, // 1/√3
	4:  0.3500211745815406,
	6:  0.2666354015167047,
	8:  0.2182178902359924,
	12: 0.1672126847969515,
	16: 0.1389568189701362,
}

// levelSymLevels computes the positive μ-levels for order N from μ1.
func levelSymLevels(order int) []float64 {
	mu1 := levelSymMu1[order]
	n2 := order / 2
	mus := make([]float64, n2)
	mus[0] = mu1
	if order > 2 {
		delta := 2 * (1 - 3*mu1*mu1) / float64(order-2)
		for i := 1; i < n2; i++ {
			mus[i] = math.Sqrt(mu1*mu1 + float64(i)*delta)
		}
	}
	return mus
}

// levelSymPointWeights lists the distinct point weights of the LQn sets,
// indexed by the weight class of each ordinate (Lewis & Miller Table 4-2),
// normalized so one octant sums to 1 (i.e. the full sphere to 8). The
// weight class assignment for each (i,j,k) triple follows the standard
// symmetry tables below.
var levelSymPointWeights = map[int][]float64{
	2:  {1.0},
	4:  {1.0 / 3.0},
	6:  {0.1761263, 0.1572071},
	8:  {0.1209877, 0.0907407, 0.0925926},
	12: {0.0707626, 0.0558811, 0.0373377, 0.0502819, 0.0258513},
	16: {0.0489872, 0.0413296, 0.0212326, 0.0256207, 0.0360486, 0.0144589, 0.0344958, 0.0085179},
}

// levelSymWeightClass maps, for each order, the ordinate position triple
// (i,j,k) (1-based level indices with i+j+k = N/2+2) to a weight class.
// Positions are canonicalized by sorting the triple descending, since the
// class is symmetric under permutation.
var levelSymWeightClass = map[int]map[[3]int]int{
	2:  {{1, 1, 1}: 0},
	4:  {{2, 1, 1}: 0},
	6:  {{3, 1, 1}: 0, {2, 2, 1}: 1},
	8:  {{4, 1, 1}: 0, {3, 2, 1}: 1, {2, 2, 2}: 2},
	12: {{6, 1, 1}: 0, {5, 2, 1}: 1, {4, 3, 1}: 2, {4, 2, 2}: 3, {3, 3, 2}: 4},
	16: {{8, 1, 1}: 0, {7, 2, 1}: 1, {6, 3, 1}: 2, {6, 2, 2}: 3, {5, 4, 1}: 4, {5, 3, 2}: 5, {4, 4, 2}: 6, {4, 3, 3}: 7},
}

// NewLevelSymmetric builds the LQn level-symmetric quadrature set of the
// given even order. Supported orders: 2, 4, 6, 8, 12, 16.
func NewLevelSymmetric(order int) (*Set, error) {
	if _, ok := levelSymMu1[order]; !ok {
		return nil, fmt.Errorf("quadrature: unsupported level-symmetric order S%d (supported: 2,4,6,8,12,16)", order)
	}
	mus := levelSymLevels(order)
	classes := levelSymWeightClass[order]
	weights := levelSymPointWeights[order]

	n2 := order / 2
	var octant []Direction
	// Enumerate 1-based level indices i+j+k = n2+2 (each in [1, n2]).
	for i := 1; i <= n2; i++ {
		for j := 1; j <= n2; j++ {
			k := n2 + 2 - i - j
			if k < 1 || k > n2 {
				continue
			}
			key := sortedTripleDesc(i, j, k)
			cls, ok := classes[key]
			if !ok {
				return nil, fmt.Errorf("quadrature: S%d missing weight class for %v", order, key)
			}
			octant = append(octant, Direction{
				Omega:  geom.Vec3{X: mus[i-1], Y: mus[j-1], Z: mus[k-1]},
				Weight: weights[cls],
			})
		}
	}

	// Normalize one octant to π/2 so the sphere integrates to 4π.
	var sum float64
	for _, d := range octant {
		sum += d.Weight
	}
	scale := (math.Pi / 2) / sum
	for i := range octant {
		octant[i].Weight *= scale
	}

	s := &Set{Order: order}
	for oct := 0; oct < 8; oct++ {
		sx, sy, sz := 1.0, 1.0, 1.0
		if oct&1 != 0 {
			sx = -1
		}
		if oct&2 != 0 {
			sy = -1
		}
		if oct&4 != 0 {
			sz = -1
		}
		for _, d := range octant {
			s.Directions = append(s.Directions, Direction{
				Omega:  geom.Vec3{X: sx * d.Omega.X, Y: sy * d.Omega.Y, Z: sz * d.Omega.Z},
				Weight: d.Weight,
				Octant: oct,
			})
		}
	}
	return s, nil
}

func sortedTripleDesc(a, b, c int) [3]int {
	if a < b {
		a, b = b, a
	}
	if b < c {
		b, c = c, b
	}
	if a < b {
		a, b = b, a
	}
	return [3]int{a, b, c}
}

// NewProductGaussChebyshev builds a product quadrature with nPolar
// Gauss-Legendre polar levels (per hemisphere) and nAzim Chebyshev
// (equally-spaced) azimuthal angles per octant. It supports arbitrary sizes
// and is used when an angle count outside the LQn tables is requested.
func NewProductGaussChebyshev(nPolar, nAzim int) (*Set, error) {
	if nPolar < 1 || nAzim < 1 {
		return nil, fmt.Errorf("quadrature: product set needs nPolar,nAzim >= 1 (got %d,%d)", nPolar, nAzim)
	}
	nodes, wts := gaussLegendre(nPolar)
	s := &Set{Order: 2 * nPolar}
	// Azimuthal points in (0, π/2), midpoint rule.
	for oct := 0; oct < 8; oct++ {
		sx, sy, sz := 1.0, 1.0, 1.0
		if oct&1 != 0 {
			sx = -1
		}
		if oct&2 != 0 {
			sy = -1
		}
		if oct&4 != 0 {
			sz = -1
		}
		for p := 0; p < nPolar; p++ {
			xi := nodes[p] // cos(theta) in (0,1)
			sinT := math.Sqrt(1 - xi*xi)
			for a := 0; a < nAzim; a++ {
				phi := (float64(a) + 0.5) * (math.Pi / 2) / float64(nAzim)
				w := wts[p] * (math.Pi / 2) / float64(nAzim)
				s.Directions = append(s.Directions, Direction{
					Omega: geom.Vec3{
						X: sx * sinT * math.Cos(phi),
						Y: sy * sinT * math.Sin(phi),
						Z: sz * xi,
					},
					Weight: w,
					Octant: oct,
				})
			}
		}
	}
	return s, nil
}

// gaussLegendre returns the n-point Gauss-Legendre nodes and weights mapped
// to the interval (0, 1) (positive hemisphere of cosθ).
func gaussLegendre(n int) (nodes, weights []float64) {
	// Newton iteration on Legendre polynomials over [-1,1], then keep the
	// mapping to (0,1): x' = (x+1)/2 with weight w/2... For the polar
	// hemisphere we want nodes of cosθ in (0,1) integrating dμ, so map
	// linearly.
	xs := make([]float64, n)
	ws := make([]float64, n)
	for i := 0; i < n; i++ {
		// Initial guess (Abramowitz & Stegun 25.4.30 style).
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, x
			if n == 1 {
				p1 = x
			}
			for k := 2; k <= n; k++ {
				p0, p1 = p1, ((2*float64(k)-1)*x*p1-(float64(k)-1)*p0)/float64(k)
			}
			// Derivative via recurrence.
			pp = float64(n) * (x*p1 - p0) / (x*x - 1)
			dx := p1 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		xs[i] = x
		ws[i] = 2 / ((1 - x*x) * pp * pp)
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	for i := 0; i < n; i++ {
		nodes[i] = (xs[i] + 1) / 2
		weights[i] = ws[i] / 2
	}
	return nodes, weights
}

// New returns a quadrature set with the requested Sn order, preferring the
// level-symmetric tables and falling back to a product rule of the same
// angle count when the order has no table entry.
func New(order int) (*Set, error) {
	if s, err := NewLevelSymmetric(order); err == nil {
		return s, nil
	}
	if order < 2 || order%2 != 0 {
		return nil, fmt.Errorf("quadrature: Sn order must be even and >= 2 (got %d)", order)
	}
	// Match N(N+2) total angles: per octant N/2 polar levels × (N+2)/4...
	// Use nPolar = N/2 and nAzim chosen so counts match as closely as the
	// product structure allows.
	nPolar := order / 2
	nAzim := (order + 2) / 4
	if nAzim < 1 {
		nAzim = 1
	}
	return NewProductGaussChebyshev(nPolar, nAzim)
}

// TotalWeight returns the sum of all weights (≈ 4π for a well-formed set).
func (s *Set) TotalWeight() float64 {
	var sum float64
	for _, d := range s.Directions {
		sum += d.Weight
	}
	return sum
}
