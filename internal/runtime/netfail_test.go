package runtime_test

// Liveness over a fail-fast network backend: a rank that is purely
// waiting for remote streams consumes the transport only through
// TryRecv/Notify, which cannot report a peer failure — the master loop
// must probe Endpoint.Err before parking, or a peer crash would leave
// the survivors spinning forever.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"jsweep/internal/core"
	"jsweep/internal/netcomm"
	"jsweep/internal/runtime"
	"jsweep/internal/testprog"
)

func TestRunRoundFailsFastWhenPeerDies(t *testing.T) {
	cluster := fmt.Sprintf("netfail-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*netcomm.Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(),
				CloseTimeout: 2 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	defer trs[0].Close()

	// Rank 0 hosts the starter of a ping-pong whose peer lives on rank 1
	// — but rank 1 never starts a runtime, and its transport dies
	// mid-round. Rank 0's master must surface the transport failure
	// instead of idling forever.
	ka := core.ProgramKey{Patch: 0, Task: 0}
	kb := core.ProgramKey{Patch: 1, Task: 0}
	sink := testprog.NewResults()
	a := &testprog.PingPong{Key: ka, Peer: kb, Rounds: 4, Starter: true, Sink: sink}
	b := &testprog.PingPong{Key: kb, Peer: ka, Rounds: 4, Sink: sink}
	rt, err := runtime.New(runtime.Config{Procs: 2, Workers: 1, Transport: trs[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Register(ka, a, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(kb, b, 0, 1); err != nil {
		t.Fatal(err)
	}
	roundErr := make(chan error, 1)
	go func() {
		_, err := rt.RunRound()
		roundErr <- err
	}()
	time.Sleep(30 * time.Millisecond) // let rank 0 send its first ball and go idle
	trs[1].Abort()                    // simulated crash of rank 1

	select {
	case err := <-roundErr:
		if err == nil {
			t.Fatal("RunRound returned nil after the peer died")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunRound still blocked after the peer died — master loop cannot observe transport failure")
	}
}
