package runtime_test

import (
	"testing"
	"time"

	"jsweep/internal/core"
	"jsweep/internal/mesh"
	"jsweep/internal/runtime"
	"jsweep/internal/testprog"
)

func mkStream(tgt int, payload int) core.Stream {
	return core.Stream{TgtPatch: mesh.PatchID(100 + tgt), Payload: make([]byte, payload)}
}

func TestStreamBatcherCountTrigger(t *testing.T) {
	b := runtime.NewStreamBatcher(1, runtime.AggregationConfig{Enabled: true, MaxBatchStreams: 3})
	now := time.Now()
	if b.Add(now, mkStream(0, 8)) || b.Add(now, mkStream(1, 8)) {
		t.Fatal("batch reported full before MaxBatchStreams")
	}
	if !b.Add(now, mkStream(2, 8)) {
		t.Fatal("batch not full at MaxBatchStreams")
	}
	buf, n := b.Flush(nil)
	if n != 3 {
		t.Fatalf("flushed %d streams, want 3", n)
	}
	shards, err := core.DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range shards {
		total += len(sh)
	}
	if total != 3 {
		t.Fatalf("decoded %d streams, want 3", total)
	}
	if b.Pending() != 0 || b.PendingBytes() != 0 {
		t.Fatal("batcher not reset after flush")
	}
}

func TestStreamBatcherBytesTrigger(t *testing.T) {
	b := runtime.NewStreamBatcher(1, runtime.AggregationConfig{
		Enabled: true, MaxBatchStreams: 1 << 20, MaxBatchBytes: 200,
	})
	now := time.Now()
	full := false
	adds := 0
	for !full && adds < 100 {
		full = b.Add(now, mkStream(adds, 64))
		adds++
	}
	if !full {
		t.Fatal("bytes trigger never fired")
	}
	// 64B payload + 20B header per stream: the trigger must fire within a
	// handful of adds, not at the stream cap.
	if adds > 4 {
		t.Fatalf("bytes trigger fired after %d adds", adds)
	}
	if b.PendingBytes() < 200 {
		t.Fatalf("pending bytes %d below trigger", b.PendingBytes())
	}
}

func TestStreamBatcherDeadline(t *testing.T) {
	b := runtime.NewStreamBatcher(1, runtime.AggregationConfig{
		Enabled: true, FlushInterval: 10 * time.Millisecond,
	})
	if _, ok := b.Deadline(); ok {
		t.Fatal("empty batcher reported a deadline")
	}
	t0 := time.Now()
	b.Add(t0, mkStream(0, 4))
	if b.Expired(t0) {
		t.Fatal("fresh batch reported expired")
	}
	dl, ok := b.Deadline()
	if !ok || dl.Sub(t0) != 10*time.Millisecond {
		t.Fatalf("deadline = %v (ok=%v)", dl.Sub(t0), ok)
	}
	if !b.Expired(t0.Add(11 * time.Millisecond)) {
		t.Fatal("aged batch not expired")
	}
}

func TestStreamBatcherFlushEmpty(t *testing.T) {
	b := runtime.NewStreamBatcher(2, runtime.AggregationConfig{Enabled: true})
	buf, n := b.Flush(nil)
	if buf != nil || n != 0 {
		t.Fatalf("empty flush produced buf=%v n=%d", buf, n)
	}
}

func TestStreamBatcherShardingRoundTrip(t *testing.T) {
	b := runtime.NewStreamBatcher(1, runtime.AggregationConfig{Enabled: true, Shards: 4, MaxBatchStreams: 1 << 20})
	now := time.Now()
	const streams = 50
	for i := 0; i < streams; i++ {
		b.Add(now, mkStream(i, i%7))
	}
	buf, n := b.Flush(nil)
	if n != streams {
		t.Fatalf("flushed %d, want %d", n, streams)
	}
	shards, err := core.DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("frame has %d shards, want 4", len(shards))
	}
	seen := map[int32]bool{}
	nonEmpty := 0
	for _, sh := range shards {
		if len(sh) > 0 {
			nonEmpty++
		}
		for _, s := range sh {
			seen[int32(s.TgtPatch)] = true
		}
	}
	if len(seen) != streams {
		t.Fatalf("round-tripped %d distinct streams, want %d", len(seen), streams)
	}
	if nonEmpty < 2 {
		t.Fatalf("sharding degenerate: %d non-empty shards", nonEmpty)
	}
}

// runGridAgg mirrors runGrid with aggregation enabled.
func runGridAgg(t *testing.T, w, h, procs, workers int, term runtime.TerminationMode, agg runtime.AggregationConfig) runtime.Stats {
	t.Helper()
	spec := testprog.GridSpec{W: w, H: h}
	progs, sink := spec.Build()
	rt, err := runtime.New(runtime.Config{Procs: procs, Workers: workers, Termination: term, Aggregation: agg})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range progs {
		if err := rt.Register(a.Key, a, 0, i%procs); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := spec.Want()
	for k, wv := range want {
		got, ok := sink.Get(k)
		if !ok || got != wv {
			t.Errorf("%v = %d (ok=%v), want %d", k, got, ok, wv)
		}
	}
	return stats
}

func TestRuntimeAggregationCorrectness(t *testing.T) {
	agg := runtime.AggregationConfig{Enabled: true}
	for _, tc := range []struct {
		procs, workers int
		term           runtime.TerminationMode
	}{
		{1, 1, runtime.Workload},
		{2, 2, runtime.Workload},
		{4, 2, runtime.Workload},
		{3, 2, runtime.Safra},
	} {
		runGridAgg(t, 6, 5, tc.procs, tc.workers, tc.term, agg)
	}
}

func TestRuntimeAggregationStats(t *testing.T) {
	st := runGridAgg(t, 8, 8, 4, 2, runtime.Workload, runtime.AggregationConfig{Enabled: true})
	if st.RemoteStreams == 0 {
		t.Fatal("expected remote streams with scattered placement")
	}
	if st.BatchesSent == 0 {
		t.Fatal("aggregation on but no batches sent")
	}
	if st.BatchesSent > st.RemoteStreams {
		t.Errorf("BatchesSent %d > RemoteStreams %d", st.BatchesSent, st.RemoteStreams)
	}
	if st.StreamsBatched != st.RemoteStreams {
		t.Errorf("StreamsBatched %d != RemoteStreams %d", st.StreamsBatched, st.RemoteStreams)
	}
	if st.StreamsPerBatch < 1 {
		t.Errorf("StreamsPerBatch = %v, want >= 1", st.StreamsPerBatch)
	}
}

// RemoteStreams is a routing invariant: aggregation changes how streams
// travel, never how many.
func TestRuntimeAggregationRemoteStreamsUnchanged(t *testing.T) {
	off := runGrid(t, 6, 6, 4, 2, runtime.Workload)
	on := runGridAgg(t, 6, 6, 4, 2, runtime.Workload, runtime.AggregationConfig{Enabled: true})
	if on.RemoteStreams != off.RemoteStreams {
		t.Errorf("RemoteStreams changed: agg on %d vs off %d", on.RemoteStreams, off.RemoteStreams)
	}
	if off.BatchesSent != 0 {
		t.Errorf("BatchesSent = %d with aggregation off", off.BatchesSent)
	}
}

// A tiny batch limit forces many deadline flushes without stalling
// termination; a huge limit forces the quiescence flush path. Both must
// terminate and produce correct results.
func TestRuntimeAggregationTerminationLiveness(t *testing.T) {
	// Batches that never fill: every flush is deadline/quiescence driven.
	st := runGridAgg(t, 5, 5, 3, 2, runtime.Workload, runtime.AggregationConfig{
		Enabled: true, MaxBatchStreams: 1 << 20, MaxBatchBytes: 1 << 30,
		FlushInterval: time.Hour, // only the quiescence flush can fire
	})
	if st.BatchesSent == 0 || st.FlushOnDeadline == 0 {
		t.Errorf("expected deadline/quiescence flushes, got batches=%d deadline=%d",
			st.BatchesSent, st.FlushOnDeadline)
	}
	// Same under Safra.
	runGridAgg(t, 4, 4, 3, 2, runtime.Safra, runtime.AggregationConfig{
		Enabled: true, MaxBatchStreams: 1 << 20, FlushInterval: time.Hour,
	})
}

func TestRuntimeAggregationMatchesEngine(t *testing.T) {
	spec := testprog.GridSpec{W: 7, H: 6}

	engProgs, engSink := spec.Build()
	eng := core.NewEngine()
	for _, a := range engProgs {
		if err := eng.Register(a.Key, a, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	rtProgs, rtSink := spec.Build()
	rt, err := runtime.New(runtime.Config{
		Procs: 3, Workers: 3, Termination: runtime.Workload,
		Aggregation: runtime.AggregationConfig{Enabled: true, Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range rtProgs {
		if err := rt.Register(a.Key, a, 0, i%3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			k := spec.Key(x, y)
			ev, _ := engSink.Get(k)
			rv, _ := rtSink.Get(k)
			if ev != rv {
				t.Errorf("%v: engine=%d runtime=%d", k, ev, rv)
			}
		}
	}
}
