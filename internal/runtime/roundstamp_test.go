package runtime_test

// Round-stamped data-lane messages: the round-boundary staleness check
// is armed on every backend now. Over TCP, a deliberately fast rank's
// early next-round messages are stashed and replayed into the next
// round (previously the check had to stand down — early and stale were
// indistinguishable), while a genuinely stale message from a finished
// round fails the boundary loudly instead of silently corrupting the
// next round.

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/core"
	"jsweep/internal/netcomm"
	"jsweep/internal/runtime"
	"jsweep/internal/testprog"
)

// rawMsg crafts a round-stamped data-lane message of the given kind (the
// wire layout pinned by the runtime: kind byte, LE32 round, payload).
func rawMsg(kind byte, round uint32, payload ...byte) []byte {
	buf := make([]byte, 5+len(payload))
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:5], round)
	copy(buf[5:], payload)
	return buf
}

const kindStreams = byte(0x01)

// TestStaleMessageFailsRoundBoundary injects a message stamped with the
// finished round into the endpoint at the round boundary: Reset must
// refuse it as stale on the in-memory backend too (the check is
// universal now, not gated on all-local).
func TestStaleMessageFailsRoundBoundary(t *testing.T) {
	tr, err := comm.NewTransport(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rt, err := runtime.New(runtime.Config{Procs: 1, Workers: 1, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	sink := testprog.NewResults()
	k := core.ProgramKey{Patch: 0, Task: 0}
	acc := &testprog.Accumulator{Key: k, Seed: 7, Sink: sink}
	if err := rt.Register(k, acc, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunRound(); err != nil {
		t.Fatal(err)
	}
	// A round-1 message still pending after round 1 terminated = stale.
	if err := tr.Endpoint(0).Send(0, rawMsg(kindStreams, 1)); err != nil {
		t.Fatal(err)
	}
	err = rt.Reset()
	if err == nil {
		t.Fatal("Reset accepted a stale round-1 message at the round-1 boundary")
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("Reset error %q does not identify the message as stale", err)
	}
}

// netPair joins two single-rank TCP transports into one cluster.
func netPair(t *testing.T) (tr0, tr1 *netcomm.Transport) {
	t.Helper()
	cluster := fmt.Sprintf("roundstamp-%d", time.Now().UnixNano())
	rz, err := netcomm.StartRendezvous("127.0.0.1:0", cluster, 2)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*netcomm.Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = netcomm.Join(netcomm.Options{
				Cluster: cluster, Rank: r, World: 2, Rendezvous: rz.Addr(),
				CloseTimeout: 2 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return trs[0], trs[1]
}

// fastRankCluster builds the two-runtime TCP cluster of the fast-rank
// tests: a source program on rank 1 streams one value per round to an
// accumulator on rank 0.
type fastRankCluster struct {
	tr0, tr1 *netcomm.Transport
	rt0, rt1 *runtime.Runtime
	src, dst *testprog.Accumulator
	sink     *testprog.Results
}

func newFastRankCluster(t *testing.T) *fastRankCluster {
	t.Helper()
	c := &fastRankCluster{sink: testprog.NewResults()}
	c.tr0, c.tr1 = netPair(t)
	t.Cleanup(func() { c.tr0.Close(); c.tr1.Close() })
	kSrc := core.ProgramKey{Patch: 1, Task: 0}
	kDst := core.ProgramKey{Patch: 0, Task: 0}
	c.src = &testprog.Accumulator{Key: kSrc, Seed: 41, Out: []core.ProgramKey{kDst}, Sink: c.sink}
	c.dst = &testprog.Accumulator{Key: kDst, Seed: 1, NumIn: 1, Sink: c.sink}
	for i, tr := range []*netcomm.Transport{c.tr0, c.tr1} {
		rt, err := runtime.New(runtime.Config{Procs: 2, Workers: 1, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rt.Close() })
		// Every node registers the full set with identical placement;
		// only locally hosted ranks instantiate their programs.
		if err := rt.Register(kSrc, c.src, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := rt.Register(kDst, c.dst, 0, 0); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			c.rt0 = rt
		} else {
			c.rt1 = rt
		}
	}
	return c
}

// runBoth runs one round on both runtimes concurrently.
func (c *fastRankCluster) runBoth(t *testing.T) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, rt := range []*runtime.Runtime{c.rt0, c.rt1} {
		wg.Add(1)
		go func(i int, rt *runtime.Runtime) {
			defer wg.Done()
			_, errs[i] = rt.RunRound()
		}(i, rt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d round failed: %v", i, err)
		}
	}
}

// TestFastRankEarlyMessagesReplayOverTCP is the satellite's regression:
// rank 1 finishes round 1 and races ahead into round 2, its round-2
// stream and done report reaching rank 0's endpoint before rank 0 has
// even reset. The round boundary must classify them as early (not
// stale) and the replayed messages must drive round 2 to the correct
// result.
func TestFastRankEarlyMessagesReplayOverTCP(t *testing.T) {
	c := newFastRankCluster(t)
	c.runBoth(t)
	if v, _ := c.sink.Get(c.dst.Key); v != 42 {
		t.Fatalf("round 1: dst computed %d, want 42", v)
	}

	// Fast rank 1 starts round 2 alone. Its RunRound blocks waiting for
	// rank 0's termination broadcast — but its source stream and done
	// report go out immediately.
	c.src.Reset()
	if err := c.rt1.Reset(); err != nil {
		t.Fatalf("fast rank reset: %v", err)
	}
	round2 := make(chan error, 1)
	go func() {
		_, err := c.rt1.RunRound()
		round2 <- err
	}()

	// Wait until the early round-2 messages (stream + done) sit in rank
	// 0's endpoint queue, exactly the boundary state the old check could
	// not tell apart from staleness.
	ep0 := c.tr0.Endpoint(0)
	deadline := time.Now().Add(10 * time.Second)
	for ep0.Pending() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("rank 0 never saw the fast rank's early messages (pending %d)", ep0.Pending())
		}
		time.Sleep(time.Millisecond)
	}

	c.dst.Reset()
	if err := c.rt0.Reset(); err != nil {
		t.Fatalf("rank 0 reset rejected early next-round messages: %v", err)
	}
	if _, err := c.rt0.RunRound(); err != nil {
		t.Fatalf("rank 0 round 2: %v", err)
	}
	if err := <-round2; err != nil {
		t.Fatalf("fast rank round 2: %v", err)
	}
	if v, _ := c.sink.Get(c.dst.Key); v != 42 {
		t.Fatalf("round 2: dst computed %d from the replayed stream, want 42", v)
	}
}

// TestStaleRoundMessageFailsOverTCP: a message stamped with an already
// finished round arriving at a rank that moved on must error the round
// out — the cluster-wide staleness invariant the stamps restore.
func TestStaleRoundMessageFailsOverTCP(t *testing.T) {
	c := newFastRankCluster(t)
	c.runBoth(t)

	// Both ranks advance to round 2; rank 1 then replays a round-1 frame
	// (a delayed duplicate, say). Rank 0 must fail its round, not absorb
	// the stale payload.
	c.src.Reset()
	c.dst.Reset()
	if err := c.rt0.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := c.rt1.Reset(); err != nil {
		t.Fatal(err)
	}
	round2 := make(chan error, 2)
	go func() {
		_, err := c.rt1.RunRound()
		round2 <- err
	}()
	if err := c.tr1.Endpoint(1).Send(0, rawMsg(kindStreams, 1)); err != nil {
		t.Fatal(err)
	}
	_, err := c.rt0.RunRound()
	if err == nil {
		t.Fatal("rank 0 absorbed a stale round-1 message in round 2")
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("round error %q does not identify the message as stale", err)
	}
	// Rank 0 died without terminating rank 1's round; abort the cluster
	// so the fast rank unblocks before Close.
	c.tr0.Abort()
	<-round2
}
