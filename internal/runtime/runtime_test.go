package runtime_test

import (
	"testing"

	"jsweep/internal/core"
	"jsweep/internal/mesh"
	"jsweep/internal/runtime"
	"jsweep/internal/testprog"
)

// runGrid executes the W×H accumulator grid on the given topology and
// checks every node value against the closed-form expectation.
func runGrid(t *testing.T, w, h, procs, workers int, term runtime.TerminationMode) runtime.Stats {
	t.Helper()
	spec := testprog.GridSpec{W: w, H: h}
	progs, sink := spec.Build()
	rt, err := runtime.New(runtime.Config{Procs: procs, Workers: workers, Termination: term})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range progs {
		if err := rt.Register(a.Key, a, 0, i%procs); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := spec.Want()
	for k, wv := range want {
		got, ok := sink.Get(k)
		if !ok || got != wv {
			t.Errorf("%v = %d (ok=%v), want %d", k, got, ok, wv)
		}
	}
	return stats
}

func TestRuntimeSingleProcSingleWorker(t *testing.T) {
	runGrid(t, 4, 4, 1, 1, runtime.Workload)
}

func TestRuntimeSingleProcManyWorkers(t *testing.T) {
	runGrid(t, 6, 5, 1, 4, runtime.Workload)
}

func TestRuntimeManyProcs(t *testing.T) {
	st := runGrid(t, 6, 6, 4, 2, runtime.Workload)
	if st.RemoteStreams == 0 {
		t.Error("expected remote streams with scattered placement")
	}
	if st.Cycles == 0 || st.BytesSent == 0 {
		t.Errorf("suspicious stats: %+v", st)
	}
}

func TestRuntimeSafraTermination(t *testing.T) {
	runGrid(t, 5, 5, 3, 2, runtime.Safra)
}

func TestRuntimeSafraSingleProc(t *testing.T) {
	runGrid(t, 3, 3, 1, 2, runtime.Safra)
}

func TestRuntimeWorkloadManyTopologies(t *testing.T) {
	for _, tc := range []struct{ procs, workers int }{
		{2, 1}, {2, 3}, {5, 2}, {8, 1},
	} {
		runGrid(t, 5, 4, tc.procs, tc.workers, runtime.Workload)
	}
}

// Zig-zag reentrancy across two processes: the Fig. 4 scenario where two
// mutually-dependent programs live on different processes.
func TestRuntimePingPongAcrossProcs(t *testing.T) {
	for _, term := range []runtime.TerminationMode{runtime.Workload, runtime.Safra} {
		sink := testprog.NewResults()
		ka := core.ProgramKey{Patch: 0, Task: 0}
		kb := core.ProgramKey{Patch: 1, Task: 0}
		const rounds = 12
		a := &testprog.PingPong{Key: ka, Peer: kb, Rounds: rounds, Starter: true, Sink: sink}
		b := &testprog.PingPong{Key: kb, Peer: ka, Rounds: rounds, Sink: sink}
		rt, err := runtime.New(runtime.Config{Procs: 2, Workers: 2, Termination: term})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Register(ka, a, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := rt.Register(kb, b, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		va, _ := sink.Get(ka)
		vb, _ := sink.Get(kb)
		if va != 2*rounds-2 || vb != 2*rounds-1 {
			t.Errorf("%v: a=%d b=%d, want %d,%d", term, va, vb, 2*rounds-2, 2*rounds-1)
		}
	}
}

// The runtime must produce exactly the same results as the sequential
// reference engine (observational equivalence).
func TestRuntimeMatchesEngine(t *testing.T) {
	spec := testprog.GridSpec{W: 7, H: 6}

	engProgs, engSink := spec.Build()
	eng := core.NewEngine()
	for _, a := range engProgs {
		if err := eng.Register(a.Key, a, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	rtProgs, rtSink := spec.Build()
	rt, err := runtime.New(runtime.Config{Procs: 3, Workers: 3, Termination: runtime.Workload})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range rtProgs {
		if err := rt.Register(a.Key, a, 0, i%3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}

	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			k := spec.Key(x, y)
			ev, _ := engSink.Get(k)
			rv, _ := rtSink.Get(k)
			if ev != rv {
				t.Errorf("%v: engine=%d runtime=%d", k, ev, rv)
			}
		}
	}
}

func TestRuntimeInitCalledOnce(t *testing.T) {
	spec := testprog.GridSpec{W: 4, H: 4}
	progs, _ := spec.Build()
	rt, err := runtime.New(runtime.Config{Procs: 2, Workers: 2, Termination: runtime.Workload})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range progs {
		if err := rt.Register(a.Key, a, 0, i%2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range progs {
		if a.InitSeen != 1 {
			t.Errorf("program %v: Init called %d times", a.Key, a.InitSeen)
		}
	}
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := runtime.New(runtime.Config{Procs: 0, Workers: 1}); err == nil {
		t.Error("zero procs should fail")
	}
	if _, err := runtime.New(runtime.Config{Procs: 1, Workers: 0}); err == nil {
		t.Error("zero workers should fail")
	}
	rt, err := runtime.New(runtime.Config{Procs: 2, Workers: 1, Termination: runtime.Workload})
	if err != nil {
		t.Fatal(err)
	}
	sink := testprog.NewResults()
	k := core.ProgramKey{Patch: 0, Task: 0}
	a := &testprog.Accumulator{Key: k, Sink: sink}
	if err := rt.Register(k, a, 0, 5); err == nil {
		t.Error("invalid rank should fail")
	}
	if err := rt.Register(k, a, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(k, a, 0, 1); err == nil {
		t.Error("duplicate key should fail")
	}
}

func TestRuntimeWorkloadRequiresReporter(t *testing.T) {
	rt, err := runtime.New(runtime.Config{Procs: 1, Workers: 1, Termination: runtime.Workload})
	if err != nil {
		t.Fatal(err)
	}
	k := core.ProgramKey{Patch: 0, Task: 0}
	if err := rt.Register(k, nonReporter{}, 0, 0); err == nil {
		t.Error("non-reporting program must be rejected in Workload mode")
	}
}

type nonReporter struct{}

func (nonReporter) Init()                       {}
func (nonReporter) Input(core.Stream)           {}
func (nonReporter) Compute()                    {}
func (nonReporter) Output() (core.Stream, bool) { return core.Stream{}, false }
func (nonReporter) VoteToHalt() bool            { return true }

func TestRuntimeStreamToUnregisteredProgram(t *testing.T) {
	rt, err := runtime.New(runtime.Config{Procs: 1, Workers: 1, Termination: runtime.Workload})
	if err != nil {
		t.Fatal(err)
	}
	sink := testprog.NewResults()
	k := core.ProgramKey{Patch: 0, Task: 0}
	a := &testprog.Accumulator{Key: k, Sink: sink, Out: []core.ProgramKey{{Patch: mesh.PatchID(9), Task: 0}}}
	if err := rt.Register(k, a, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Error("stream to unregistered program should surface an error")
	}
}

func TestRuntimeRunTwice(t *testing.T) {
	rt, err := runtime.New(runtime.Config{Procs: 1, Workers: 1, Termination: runtime.Workload})
	if err != nil {
		t.Fatal(err)
	}
	sink := testprog.NewResults()
	k := core.ProgramKey{Patch: 0, Task: 0}
	if err := rt.Register(k, &testprog.Accumulator{Key: k, Sink: sink}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

// A bigger stress combination to shake out scheduling races under -race.
func TestRuntimeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	runGrid(t, 20, 20, 6, 4, runtime.Workload)
	runGrid(t, 20, 20, 6, 4, runtime.Safra)
}
