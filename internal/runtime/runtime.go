// Package runtime is the patch-centric data-driven runtime system of paper
// §IV: it maps patch-programs onto a cluster of multicore processes with
// hybrid process+thread parallelism. Each process runs one master
// goroutine (stream routing, dynamic program placement, termination
// detection) and a set of worker goroutines (patch-program execution),
// mirroring Fig. 8. Processes communicate exclusively through packed
// byte messages over the comm transport.
//
// Two termination detectors are provided, as in §IV-C: the special
// workload-counter condition for algorithms whose total work is known in
// advance (sweeps), and Safra's general token algorithm [Misra/EWD 998
// family] for arbitrary data-driven programs.
//
// A Runtime is a persistent session: the paper's runtime is a long-lived
// service patch-programs are mapped onto, so processes, worker goroutines
// and the transport survive across rounds. RunRound executes the
// registered programs to global termination once; Reset rearms the
// termination detectors and reactivates every program for the next round
// (the caller restores program-local state first, e.g. rebinding a new
// emission source); Close tears the worker goroutines down. Run remains
// the single-shot convenience (one round, then Close).
package runtime

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"jsweep/internal/comm"
	"jsweep/internal/core"
	"jsweep/internal/obs"
)

// TerminationMode selects the distributed termination detector.
type TerminationMode int

const (
	// Workload terminates when every process has exhausted its known
	// remaining workload (all programs must implement core.WorkloadReporter).
	Workload TerminationMode = iota
	// Safra runs Safra's token-ring termination detection and works for
	// any program set.
	Safra
)

func (m TerminationMode) String() string {
	if m == Safra {
		return "safra"
	}
	return "workload"
}

// Config configures a runtime instance.
type Config struct {
	// Procs is the number of MPI-style processes across the whole cluster.
	Procs int
	// Workers is the number of worker goroutines per process (the paper
	// reserves one core per process for the master; workers are the rest).
	Workers int
	// Termination selects the distributed termination detector.
	Termination TerminationMode
	// Aggregation configures outbound message aggregation: remote streams
	// coalesce into per-destination multi-stream frames instead of going
	// out one message per routeStreams call.
	Aggregation AggregationConfig
	// Transport is the message-passing backend. Nil (the default) creates
	// an in-memory transport hosting all Procs ranks as goroutines of
	// this OS process; the runtime owns and closes it. A non-nil
	// transport (e.g. the TCP backend of internal/netcomm) must span
	// exactly Procs ranks, and the runtime hosts only its LocalRanks —
	// the caller retains ownership and closes the transport after Close.
	Transport comm.Transport
}

// Stats aggregates execution statistics across all processes. RunRound
// returns the statistics of one round; CumulativeStats sums every round
// of the session (its RoundsRun field counts the rounds).
type Stats struct {
	// RoundsRun counts the RunRound executions these statistics cover:
	// 1 for a per-round view, the session round count for the
	// cumulative view.
	RoundsRun int64
	// Cycles counts Alg. 1 executions of all programs.
	Cycles int64
	// LocalStreams / RemoteStreams count routed streams by destination.
	LocalStreams, RemoteStreams int64
	// BytesSent is the total packed bytes crossing process boundaries.
	BytesSent int64
	// Messages is the number of transport messages carrying streams.
	Messages int64
	// BatchesSent counts aggregated frames sent (0 when aggregation is
	// off). With aggregation working, BatchesSent < RemoteStreams.
	BatchesSent int64
	// StreamsBatched counts remote streams that left inside aggregated
	// frames (equals RemoteStreams when aggregation is on).
	StreamsBatched int64
	// FlushOnDeadline counts batch flushes forced by the idle/deadline
	// trigger rather than a full batch.
	FlushOnDeadline int64
	// StreamsPerBatch is the mean aggregation factor
	// (StreamsBatched/BatchesSent); 0 when no batches were sent.
	StreamsPerBatch float64
	// WorkerBusy sums the time workers spent executing program cycles.
	WorkerBusy time.Duration
	// PackTime / UnpackTime sum stream serialization costs in the masters.
	PackTime, UnpackTime time.Duration
	// Wall is the wall-clock span of Run.
	Wall time.Duration
}

// message kinds on the wire. Every data-lane message is round-stamped:
// kind byte, then the sender's 4-byte little-endian round counter, then
// the kind's payload. The stamp is what keeps the round-boundary
// staleness check armed on network backends, where a faster rank's
// early next-round messages would otherwise be indistinguishable from
// stale leftovers of a round that failed to drain.
const (
	msgStreams = byte(0x01)
	msgDone    = byte(0x02) // workload mode: proc finished
	msgTerm    = byte(0x03) // rank 0 broadcast: terminate
	msgToken   = byte(0x04) // Safra token
	msgFrame   = byte(0x05) // aggregated multi-stream frame
	tokenWhite = byte(0)
	tokenBlack = byte(1)

	// msgHeaderSize is the kind byte plus the round stamp.
	msgHeaderSize = 1 + 4
)

// stampHeader writes a message's kind and round stamp into its first
// msgHeaderSize bytes.
func stampHeader(buf []byte, kind byte, round uint32) {
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:msgHeaderSize], round)
}

// parseStamp splits a data-lane message into kind, round stamp and body.
func parseStamp(data []byte) (kind byte, round uint32, body []byte, err error) {
	if len(data) < msgHeaderSize {
		return 0, 0, nil, fmt.Errorf("runtime: short message (%d bytes)", len(data))
	}
	return data[0], binary.LittleEndian.Uint32(data[1:msgHeaderSize]), data[msgHeaderSize:], nil
}

// Runtime executes a set of registered patch-programs across Procs
// processes × Workers workers. Register programs, then either call Run
// once (single-shot) or drive a persistent session with
// RunRound / Reset / ... / Close: processes, worker goroutines and the
// transport stay alive between rounds.
type Runtime struct {
	cfg       Config
	transport comm.Transport
	// ownsTransport marks a runtime-created in-memory transport, closed by
	// Close; a caller-provided transport is left open.
	ownsTransport bool
	// procs holds the locally hosted processes (all Procs ranks with the
	// in-memory transport; this node's ranks with a network backend).
	procs []*process
	// byRank maps a rank to its local process, nil for remote ranks.
	byRank []*process
	// allLocal is true when every rank is hosted in this OS process.
	allLocal bool
	owner    map[core.ProgramKey]int

	// started flips when the first round launches the worker goroutines;
	// registration closes at that point.
	started bool
	// closed flips once Close has torn the workers down.
	closed bool
	// broken marks a session whose last round returned an error: its
	// processes may hold undrained state, so further rounds are refused.
	broken bool
	// needReset is set after every completed round; Reset clears it.
	needReset bool

	rounds int64
	last   Stats // most recent round
	cum    Stats // session totals across rounds

	// m holds the obs handles, resolved from obs.Default() at New; all
	// folding happens once per round (see metrics.go), never per message.
	m runtimeMetrics
}

// New creates a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("runtime: need >= 1 proc (got %d)", cfg.Procs)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("runtime: need >= 1 worker per proc (got %d)", cfg.Workers)
	}
	rt := &Runtime{
		cfg:   cfg,
		owner: make(map[core.ProgramKey]int),
		m:     newRuntimeMetrics(obs.Default()),
	}
	if cfg.Transport != nil {
		if n := cfg.Transport.NumRanks(); n != cfg.Procs {
			return nil, fmt.Errorf("runtime: transport spans %d ranks, config wants %d procs", n, cfg.Procs)
		}
		rt.transport = cfg.Transport
	} else {
		tr, err := comm.NewTransport(cfg.Procs)
		if err != nil {
			return nil, err
		}
		rt.transport = tr
		rt.ownsTransport = true
	}
	local := rt.transport.LocalRanks()
	if len(local) == 0 {
		return nil, fmt.Errorf("runtime: transport hosts no local ranks")
	}
	rt.byRank = make([]*process, cfg.Procs)
	rt.procs = make([]*process, 0, len(local))
	for _, r := range local {
		if r < 0 || r >= cfg.Procs {
			return nil, fmt.Errorf("runtime: transport local rank %d out of range [0,%d)", r, cfg.Procs)
		}
		if rt.byRank[r] != nil {
			return nil, fmt.Errorf("runtime: transport lists local rank %d twice", r)
		}
		p := newProcess(rt, r)
		rt.byRank[r] = p
		rt.procs = append(rt.procs, p)
	}
	rt.allLocal = len(rt.procs) == cfg.Procs
	return rt, nil
}

// Register places program key on process rank with the given scheduling
// priority (larger runs earlier). All programs start active. Every node
// of a multi-process cluster registers the complete program set with
// identical placement (that is what routes remote streams); only the
// locally hosted ranks actually instantiate and run their programs.
func (rt *Runtime) Register(key core.ProgramKey, prog core.PatchProgram, prio int64, rank int) error {
	if rt.started {
		return fmt.Errorf("runtime: Register after the session started")
	}
	if rank < 0 || rank >= rt.cfg.Procs {
		return fmt.Errorf("runtime: program %v placed on invalid rank %d", key, rank)
	}
	if _, dup := rt.owner[key]; dup {
		return fmt.Errorf("runtime: duplicate program %v", key)
	}
	if rt.cfg.Termination == Workload {
		if _, ok := prog.(core.WorkloadReporter); !ok {
			return fmt.Errorf("runtime: program %v does not implement WorkloadReporter; use Safra termination", key)
		}
	}
	rt.owner[key] = rank
	if p := rt.byRank[rank]; p != nil {
		p.register(key, prog, prio)
	}
	return nil
}

// Run executes all programs to global termination once and closes the
// session. For multi-round sessions use RunRound / Reset / Close.
func (rt *Runtime) Run() (Stats, error) { return rt.RunCtx(context.Background()) }

// RunCtx is Run with cooperative cancellation (see RunRoundCtx).
func (rt *Runtime) RunCtx(ctx context.Context) (Stats, error) {
	if rt.started {
		return Stats{}, fmt.Errorf("runtime: Run called twice (use RunRound for multi-round sessions)")
	}
	st, err := rt.RunRoundCtx(ctx)
	if cerr := rt.Close(); err == nil {
		err = cerr
	}
	return st, err
}

// RunRound executes all registered programs to global termination and
// returns the round's statistics. The first call launches the worker
// goroutines; they stay parked between rounds. Reset must be called
// between rounds.
func (rt *Runtime) RunRound() (Stats, error) { return rt.RunRoundCtx(context.Background()) }

// RunRoundCtx is RunRound with cooperative cancellation: every local
// master loop watches the context and abandons the round with ctx.Err()
// once it is done. A cancelled round leaves the session broken (its
// processes may hold undrained state) — the caller's only further move
// is Close, which unparks and joins the worker goroutines. Cancellation
// is local: remote ranks of a multi-process cluster observe it through
// the transport's failure propagation, not through this context.
func (rt *Runtime) RunRoundCtx(ctx context.Context) (Stats, error) {
	if rt.closed {
		return Stats{}, fmt.Errorf("runtime: RunRound on closed session")
	}
	if rt.broken {
		return Stats{}, fmt.Errorf("runtime: session broken by an earlier round error")
	}
	if rt.needReset {
		return Stats{}, fmt.Errorf("runtime: Reset required between rounds")
	}
	if !rt.started {
		rt.started = true
		for _, p := range rt.procs {
			p.startWorkers()
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(rt.procs))
	for i, p := range rt.procs {
		wg.Add(1)
		go func(i int, p *process) {
			defer wg.Done()
			errs[i] = p.runRound(ctx)
		}(i, p)
	}
	wg.Wait()
	st := Stats{RoundsRun: 1}
	for _, p := range rt.procs {
		st.add(p.collectRound())
	}
	st.Wall = time.Since(start)
	rt.m.observeRound(st)
	rt.rounds++
	rt.needReset = true
	rt.last = st
	rt.cum.add(st)
	rt.cum.RoundsRun = rt.rounds
	for _, err := range errs {
		if err != nil {
			rt.broken = true
			return st, err
		}
	}
	return st, nil
}

// Reset rearms the session for another round: every registered program is
// reactivated (the caller must first restore the programs themselves to a
// runnable state — e.g. rebind a new emission source), the termination
// detectors are reinitialized, and per-round statistics are cleared.
// Program Init calls are NOT repeated: initialization happened in round 1
// and program-local state is owned by the caller between rounds.
func (rt *Runtime) Reset() error {
	if rt.closed {
		return fmt.Errorf("runtime: Reset on closed session")
	}
	if rt.broken {
		return fmt.Errorf("runtime: Reset on session broken by an earlier round error")
	}
	for _, p := range rt.procs {
		if err := p.resetRound(); err != nil {
			return err
		}
	}
	rt.needReset = false
	return nil
}

// Close shuts the worker goroutines down and ends the session. A
// runtime-owned (in-memory) transport is closed too; a caller-provided
// transport stays open for the caller's own collectives and teardown. It
// is idempotent; statistics remain readable afterwards.
func (rt *Runtime) Close() error {
	if rt.closed {
		return nil
	}
	rt.closed = true
	if rt.started {
		for _, p := range rt.procs {
			p.mu.Lock()
			p.shutdown = true
			for _, w := range p.workers {
				w.cond.Broadcast()
			}
			p.mu.Unlock()
		}
		for _, p := range rt.procs {
			p.drainAndJoin()
		}
	}
	if rt.ownsTransport {
		return rt.transport.Close()
	}
	return nil
}

// RoundsRun returns the number of completed rounds in this session.
func (rt *Runtime) RoundsRun() int64 { return rt.rounds }

// LastRoundStats returns the statistics of the most recent round.
func (rt *Runtime) LastRoundStats() Stats { return rt.last }

// CumulativeStats returns statistics summed over every round of the
// session; RoundsRun carries the round count.
func (rt *Runtime) CumulativeStats() Stats { return rt.cum }

// add folds the counters of o into c (RoundsRun excluded — the caller
// owns the round count of each view) and refreshes the derived
// StreamsPerBatch mean. Shared by the per-round and cumulative views so
// a new Stats field only needs one summation site.
func (c *Stats) add(o Stats) {
	c.Cycles += o.Cycles
	c.LocalStreams += o.LocalStreams
	c.RemoteStreams += o.RemoteStreams
	c.BytesSent += o.BytesSent
	c.Messages += o.Messages
	c.BatchesSent += o.BatchesSent
	c.StreamsBatched += o.StreamsBatched
	c.FlushOnDeadline += o.FlushOnDeadline
	c.WorkerBusy += o.WorkerBusy
	c.PackTime += o.PackTime
	c.UnpackTime += o.UnpackTime
	c.Wall += o.Wall
	if c.BatchesSent > 0 {
		c.StreamsPerBatch = float64(c.StreamsBatched) / float64(c.BatchesSent)
	}
}

// progState tracks one patch-program inside its home process.
type progState struct {
	key   core.ProgramKey
	prog  core.PatchProgram
	prio  int64
	seq   int64
	inbox []core.Stream
	// inboxFree is the previous inbox buffer, recycled by the worker after
	// consuming it so steady-state delivery stops allocating.
	inboxFree   []core.Stream
	active      bool
	queued      bool
	running     bool
	initialized bool
	worker      int // owning worker, -1 when unassigned
	index       int // heap index
}

// workerResult is what a worker hands back to its master per cycle.
type workerResult struct {
	streams []core.Stream
}

type process struct {
	rt   *Runtime
	rank int
	ep   comm.Endpoint

	// batchers aggregates outbound streams per destination rank; nil when
	// aggregation is disabled. Only the master goroutine touches them.
	batchers []*StreamBatcher

	mu      sync.Mutex
	progs   map[core.ProgramKey]*progState
	workers []*workerQueue
	// activePrograms counts programs in Active state.
	activePrograms int
	// busyWorkers counts workers between popping a program and handing
	// their produced streams to the master — passive() must see them.
	busyWorkers int
	shutdown    bool

	results chan workerResult

	// Safra state.
	safraColor   byte
	safraCounter int64 // stream messages sent - received
	holdingToken bool
	tokenColor   byte
	tokenCount   int64
	probedOnce   bool // rank 0: a full token round has completed

	// Workload-mode state (rank 0 only).
	doneReports map[int]bool
	sentDone    bool

	// round is the 1-based number of the round in progress (or, between
	// rounds, of the round just finished); it stamps every outbound
	// data-lane message. future stashes early arrivals whose stamp is
	// ahead of the current round (a faster peer over a network backend);
	// replay holds the stash promoted at Reset, consumed before the
	// endpoint queue at the next round's start. Both are only touched by
	// the master loop and the between-rounds Reset, never concurrently.
	round  uint32
	future []comm.Message
	replay []comm.Message

	stats Stats

	wg sync.WaitGroup
}

type workerQueue struct {
	id   int
	heap progHeap
	cond *sync.Cond
	load int // queued + running programs assigned here
	busy time.Duration
}

func newProcess(rt *Runtime, rank int) *process {
	p := &process{
		rt:          rt,
		rank:        rank,
		ep:          rt.transport.Endpoint(rank),
		progs:       make(map[core.ProgramKey]*progState),
		results:     make(chan workerResult, 4096),
		doneReports: make(map[int]bool),
		safraColor:  tokenWhite,
		round:       1,
	}
	p.workers = make([]*workerQueue, rt.cfg.Workers)
	for w := range p.workers {
		p.workers[w] = &workerQueue{id: w, cond: sync.NewCond(&p.mu)}
	}
	if rt.cfg.Aggregation.Enabled && rt.cfg.Procs > 1 {
		p.batchers = make([]*StreamBatcher, rt.cfg.Procs)
		for r := 0; r < rt.cfg.Procs; r++ {
			if r != rank {
				p.batchers[r] = NewStreamBatcher(r, rt.cfg.Aggregation)
			}
		}
	}
	return p
}

func (p *process) register(key core.ProgramKey, prog core.PatchProgram, prio int64) {
	ps := &progState{key: key, prog: prog, prio: prio, seq: int64(len(p.progs)), active: true, worker: -1}
	p.progs[key] = ps
	p.activePrograms++
}

// startWorkers launches the persistent worker goroutines. Called once per
// session, before the first round.
func (p *process) startWorkers() {
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.workerLoop(w)
	}
}

// runRound is the master loop of one process (paper Fig. 8) for one
// round: it distributes the active programs, drives execution to the
// termination decision, and leaves the workers parked for the next round.
func (p *process) runRound(ctx context.Context) error {
	// Distribute initially active programs evenly across workers (§IV-B),
	// highest priority spread first for an even start.
	p.mu.Lock()
	i := 0
	for _, ps := range p.progs {
		if !ps.active {
			continue
		}
		w := p.workers[i%len(p.workers)]
		p.assignLocked(ps, w)
		i++
	}
	p.mu.Unlock()

	// Rank 0 owns the Safra token initially.
	if p.rt.cfg.Termination == Safra && p.rank == 0 {
		p.holdingToken = true
		p.tokenColor = tokenWhite
		p.tokenCount = 0
	}

	var err error
	ticker := time.NewTicker(200 * time.Microsecond)
	defer ticker.Stop()
masterLoop:
	for {
		// Cooperative cancellation: abandon the round as soon as the
		// context is done, even while the master is busy.
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("runtime: rank %d round cancelled: %w", p.rank, cerr)
			break masterLoop
		}
		progress := false
		// Drain the transport — the early arrivals stashed at the last
		// round boundary first (they arrived before anything still queued
		// on the endpoint, so pairwise FIFO order is preserved).
		for {
			var m comm.Message
			var ok bool
			if len(p.replay) > 0 {
				m, ok = p.replay[0], true
				p.replay[0] = comm.Message{} // the backing array must not pin consumed payloads
				p.replay = p.replay[1:]
			} else {
				m, ok = p.ep.TryRecv()
			}
			if !ok {
				break
			}
			progress = true
			stop, herr := p.handleMessage(m)
			if herr != nil {
				err = herr
				break masterLoop
			}
			if stop {
				break masterLoop
			}
		}
		// Drain worker results.
		for {
			select {
			case r := <-p.results:
				progress = true
				if herr := p.routeStreams(r.streams); herr != nil {
					err = herr
					break masterLoop
				}
			default:
				goto drained
			}
		}
	drained:
		// Deadline flushes run every iteration, not only when idle: a busy
		// master must still honor the FlushInterval liveness bound so
		// downstream ranks are never starved behind a half-full batch.
		if p.batchers != nil {
			flushed, ferr := p.flushExpired(time.Now())
			if ferr != nil {
				err = ferr
				break masterLoop
			}
			if flushed {
				progress = true
			}
		}
		if !progress {
			// Quiescent: flush everything pending so termination detection
			// never waits on a batch that will not fill.
			if p.batchers != nil {
				flushed, ferr := p.flushQuiescent()
				if ferr != nil {
					err = ferr
					break masterLoop
				}
				if flushed {
					continue masterLoop
				}
			}
			if stop := p.checkTermination(); stop {
				break masterLoop
			}
			// A dead transport can never terminate this round: a waiting
			// rank consumes only TryRecv/Notify, which cannot report a
			// peer failure, so probe the terminal state before parking.
			if terr := p.ep.Err(); terr != nil {
				err = fmt.Errorf("runtime: rank %d transport failed mid-round: %w", p.rank, terr)
				break masterLoop
			}
			// Idle wait on any event source.
			select {
			case r := <-p.results:
				if herr := p.routeStreams(r.streams); herr != nil {
					err = herr
					break masterLoop
				}
			case <-p.ep.Notify():
			case <-ctx.Done():
			case <-ticker.C:
			}
		}
	}

	// Workers stay parked on their condvars for the next round. On a clean
	// termination they are idle (passive() saw no queued or running work)
	// and the results channel is empty; on error the session is marked
	// broken and Close drains whatever the workers still produce.
	p.mu.Lock()
	for _, w := range p.workers {
		p.stats.WorkerBusy += w.busy
		w.busy = 0
	}
	p.mu.Unlock()
	return err
}

// collectRound returns the round's statistics and zeroes them for the
// next round. Called between rounds, when the master is stopped and the
// workers are parked.
func (p *process) collectRound() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	p.stats = Stats{}
	return st
}

// resetRound rearms one process for the next round: every program is
// reactivated, the termination detectors reinitialize, and leftover
// round state is verified to be clean (a stale message or half-full
// batcher means the previous round did not terminate properly).
func (p *process) resetRound() error {
	// Round-boundary staleness check, armed on every backend: data-lane
	// messages carry their sender's round stamp, so a message still
	// pending here from the round just finished (or earlier) is
	// necessarily stale — that round terminated without draining it.
	// Early arrivals stamped with a later round (a faster peer over a
	// network backend that legitimately began its next round) are kept
	// and replayed at the next round's start.
	for {
		m, ok := p.ep.TryRecv()
		if !ok {
			break
		}
		_, round, _, err := parseStamp(m.Data)
		if err != nil {
			return fmt.Errorf("runtime: rank %d at round-%d boundary: %w", p.rank, p.round, err)
		}
		if round <= p.round {
			return fmt.Errorf("runtime: rank %d has a stale round-%d message from rank %d undrained at the round-%d boundary",
				p.rank, round, m.From, p.round)
		}
		p.future = append(p.future, m)
		p.rt.m.stashed.Inc()
	}
	// Promote the stash: it becomes the next round's first input. Sanity:
	// nothing may still sit in replay — the round consumed it all.
	if n := len(p.replay); n > 0 {
		return fmt.Errorf("runtime: rank %d has %d unreplayed messages at round boundary", p.rank, n)
	}
	p.replay = p.future
	p.future = nil
	p.round++
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.busyWorkers > 0 {
		return fmt.Errorf("runtime: rank %d has %d busy workers at round boundary", p.rank, p.busyWorkers)
	}
	for _, b := range p.batchers {
		if b != nil && b.Pending() > 0 {
			return fmt.Errorf("runtime: rank %d has %d unflushed batched streams at round boundary", p.rank, b.Pending())
		}
	}
	for _, ps := range p.progs {
		if len(ps.inbox) > 0 {
			return fmt.Errorf("runtime: program %v has %d undelivered streams at round boundary", ps.key, len(ps.inbox))
		}
		ps.active = true
		ps.queued = false
		ps.running = false
		ps.worker = -1
	}
	p.activePrograms = len(p.progs)
	// Safra: a fresh round starts all-white with balanced counters and the
	// token back at rank 0 (runRound hands it out).
	p.safraColor = tokenWhite
	p.safraCounter = 0
	p.holdingToken = false
	p.tokenColor = tokenWhite
	p.tokenCount = 0
	p.probedOnce = false
	// Workload mode: done reports are per round.
	clear(p.doneReports)
	p.sentDone = false
	return nil
}

// drainAndJoin waits for the worker goroutines to exit, draining the
// results channel so a worker blocked on a full channel can finish.
func (p *process) drainAndJoin() {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-p.results:
		case <-done:
			return
		}
	}
}

// assignLocked queues program ps on worker w. Caller holds p.mu.
func (p *process) assignLocked(ps *progState, w *workerQueue) {
	ps.worker = w.id
	ps.queued = true
	w.load++
	w.heap.push(ps)
	w.cond.Signal()
}

// lightestWorker returns the worker with the smallest load. Caller holds
// p.mu.
func (p *process) lightestWorker() *workerQueue {
	best := p.workers[0]
	for _, w := range p.workers[1:] {
		if w.load < best.load {
			best = w
		}
	}
	return best
}

// routeStreams routes worker-produced streams: local targets are delivered
// directly; remote targets go straight into the destination's batcher
// (aggregating path) or are grouped per rank and sent immediately.
func (p *process) routeStreams(streams []core.Stream) error {
	if len(streams) == 0 {
		return nil
	}
	var perRank map[int][]core.Stream
	var now time.Time
	if p.batchers != nil {
		now = time.Now()
	}
	p.mu.Lock()
	for _, s := range streams {
		tgt := s.Tgt()
		rank, ok := p.rt.owner[tgt]
		if !ok {
			p.mu.Unlock()
			return fmt.Errorf("runtime: stream %v -> %v targets unregistered program", s.Src(), tgt)
		}
		if rank == p.rank {
			p.stats.LocalStreams++
			p.deliverLocked(s)
			continue
		}
		p.stats.RemoteStreams++
		if p.batchers != nil {
			p.batchers[rank].Add(now, s)
			continue
		}
		if perRank == nil {
			perRank = make(map[int][]core.Stream)
		}
		perRank[rank] = append(perRank[rank], s)
	}
	p.mu.Unlock()
	if p.batchers != nil {
		// Flush outside the lock: a batch may overshoot its trigger by the
		// streams of this one call, which the flush policy tolerates.
		for _, b := range p.batchers {
			if b != nil && b.Full() {
				if err := p.flushBatcher(b, FlushSize); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for rank, batch := range perRank {
		t0 := time.Now()
		// Pooled buffer: the transport (or the receiving consumer, for
		// in-memory and self-sends) recycles it — steady-state rounds stop
		// allocating per message.
		buf := comm.GetBuffer(core.EncodedSize(batch) + msgHeaderSize)[:msgHeaderSize]
		stampHeader(buf, msgStreams, p.round)
		buf = core.EncodeStreams(buf, batch)
		p.stats.PackTime += time.Since(t0)
		p.stats.BytesSent += int64(len(buf))
		p.stats.Messages++
		p.safraCounter++ // Safra: sends increment the deficit counter
		if err := comm.SendPooled(p.ep, rank, buf); err != nil {
			return err
		}
	}
	return nil
}

// flushBatcher sends b's pending streams as one aggregated frame.
func (p *process) flushBatcher(b *StreamBatcher, reason FlushReason) error {
	if b.Pending() == 0 {
		return nil
	}
	t0 := time.Now()
	buf := comm.GetBuffer(b.PendingBytes() + msgHeaderSize)[:msgHeaderSize]
	stampHeader(buf, msgFrame, p.round)
	buf, n := b.Flush(buf)
	p.stats.PackTime += time.Since(t0)
	p.stats.BytesSent += int64(len(buf))
	p.stats.Messages++
	p.stats.BatchesSent++
	p.stats.StreamsBatched += int64(n)
	if reason == FlushDeadline {
		p.stats.FlushOnDeadline++
	}
	p.safraCounter++ // Safra: sends increment the deficit counter
	return comm.SendPooled(p.ep, b.Dest(), buf)
}

// flushExpired flushes every batch whose oldest stream aged past the
// flush deadline. Reports whether any frame went out.
func (p *process) flushExpired(now time.Time) (flushed bool, err error) {
	for _, b := range p.batchers {
		if b != nil && b.Expired(now) {
			if err := p.flushBatcher(b, FlushDeadline); err != nil {
				return flushed, err
			}
			flushed = true
		}
	}
	return flushed, nil
}

// flushQuiescent flushes everything pending once the process has no
// runnable work left, so remote ranks (and the termination detector)
// never wait on a batch that cannot fill.
func (p *process) flushQuiescent() (flushed bool, err error) {
	p.mu.Lock()
	quiescent := p.activePrograms == 0 && p.busyWorkers == 0
	p.mu.Unlock()
	if !quiescent || len(p.results) > 0 {
		return false, nil
	}
	for _, b := range p.batchers {
		if b != nil && b.Pending() > 0 {
			if err := p.flushBatcher(b, FlushDeadline); err != nil {
				return flushed, err
			}
			flushed = true
		}
	}
	return flushed, nil
}

// pendingBatched returns the number of streams buffered in outbound
// batchers (0 when aggregation is off).
func (p *process) pendingBatched() int {
	n := 0
	for _, b := range p.batchers {
		if b != nil {
			n += b.Pending()
		}
	}
	return n
}

// deliverRemote validates and delivers streams received from another
// rank (Safra bookkeeping is per message and stays with the caller).
func (p *process) deliverRemote(streams []core.Stream) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range streams {
		if _, ok := p.progs[s.Tgt()]; !ok {
			return fmt.Errorf("runtime: rank %d received stream for foreign program %v", p.rank, s.Tgt())
		}
		p.stats.LocalStreams++
		p.deliverLocked(s)
	}
	return nil
}

// deliverLocked appends a stream to its target program's inbox and
// activates/queues it. Caller holds p.mu.
func (p *process) deliverLocked(s core.Stream) {
	ps := p.progs[s.Tgt()]
	ps.inbox = append(ps.inbox, s)
	if !ps.active {
		ps.active = true
		p.activePrograms++
		// Dynamic placement: a re-activated program goes to the lightest
		// worker (paper §IV-B).
		ps.worker = -1
	}
	if !ps.queued && !ps.running {
		w := p.workers[0]
		if ps.worker >= 0 {
			w = p.workers[ps.worker]
		} else {
			w = p.lightestWorker()
		}
		p.assignLocked(ps, w)
	}
}

// handleMessage processes one transport message. Returns stop=true when
// the process should exit its master loop. A message stamped with a
// later round than the one in progress is stashed for that round (a
// faster peer already moved on); one stamped with an earlier round is a
// staleness bug and errors the round out.
func (p *process) handleMessage(m comm.Message) (stop bool, err error) {
	kind, round, body, err := parseStamp(m.Data)
	if err != nil {
		return false, err
	}
	if round > p.round {
		p.future = append(p.future, m)
		p.rt.m.stashed.Inc()
		return false, nil
	}
	// Every path below consumes the message: recycle its transport buffer
	// once decoded (DecodeStreams/DecodeFrame copy payloads out). Stashed
	// future messages recycle when their round consumes them here.
	defer comm.PutBuffer(m.Data)
	if round < p.round {
		return false, fmt.Errorf("runtime: rank %d received a stale round-%d message from rank %d in round %d",
			p.rank, round, m.From, p.round)
	}
	switch kind {
	case msgStreams:
		t0 := time.Now()
		streams, derr := core.DecodeStreams(body)
		p.stats.UnpackTime += time.Since(t0)
		if derr != nil {
			return false, derr
		}
		p.safraCounter--
		p.safraColor = tokenBlack
		return false, p.deliverRemote(streams)
	case msgFrame:
		t0 := time.Now()
		shards, derr := core.DecodeFrame(body)
		p.stats.UnpackTime += time.Since(t0)
		if derr != nil {
			return false, derr
		}
		p.safraCounter--
		p.safraColor = tokenBlack
		for _, sh := range shards {
			if err := p.deliverRemote(sh); err != nil {
				return false, err
			}
		}
	case msgDone:
		if p.rank != 0 {
			return false, fmt.Errorf("runtime: done report reached rank %d", p.rank)
		}
		p.doneReports[m.From] = true
	case msgTerm:
		return true, nil
	case msgToken:
		if len(body) != 9 {
			return false, fmt.Errorf("runtime: malformed token")
		}
		p.holdingToken = true
		p.tokenColor = body[0]
		p.tokenCount = int64(binary.LittleEndian.Uint64(body[1:]))
	default:
		return false, fmt.Errorf("runtime: unknown message kind %#x", kind)
	}
	return false, nil
}

// passive reports whether this process has no runnable work: all programs
// inactive, no worker mid-cycle, no undrained results.
func (p *process) passive() bool {
	if len(p.results) > 0 || p.ep.Pending() > 0 {
		return false
	}
	// Streams waiting in outbound batchers are in-flight work: they must
	// flush (flushQuiescent does this once quiescent) before termination.
	if p.pendingBatched() > 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.activePrograms > 0 || p.busyWorkers > 0 {
		return false
	}
	for _, w := range p.workers {
		if w.load > 0 {
			return false
		}
	}
	return true
}

// checkTermination runs the configured detector; returns true when the
// process should stop. Only called when the master made no progress.
func (p *process) checkTermination() bool {
	switch p.rt.cfg.Termination {
	case Workload:
		return p.checkWorkloadTermination()
	case Safra:
		return p.checkSafraTermination()
	}
	return false
}

func (p *process) checkWorkloadTermination() bool {
	if !p.passive() {
		return false
	}
	p.mu.Lock()
	rem := int64(0)
	for _, ps := range p.progs {
		rem += ps.prog.(core.WorkloadReporter).RemainingWork()
	}
	p.mu.Unlock()
	if rem != 0 {
		return false
	}
	if p.rank != 0 {
		if !p.sentDone {
			p.sentDone = true
			_ = comm.SendPooled(p.ep, 0, p.stamped(msgDone))
		}
		return false // wait for msgTerm
	}
	// Rank 0: terminate once every other rank reported done.
	if len(p.doneReports) == p.rt.cfg.Procs-1 {
		for r := 1; r < p.rt.cfg.Procs; r++ {
			_ = comm.SendPooled(p.ep, r, p.stamped(msgTerm))
		}
		return true
	}
	return false
}

// stamped returns a payload-free data-lane message of the given kind,
// round-stamped for the current round. The buffer is pool-backed: send
// it with comm.SendPooled so it recycles after the wire (or the
// receiving consumer).
func (p *process) stamped(kind byte) []byte {
	buf := comm.GetBuffer(msgHeaderSize)[:msgHeaderSize]
	stampHeader(buf, kind, p.round)
	return buf
}

func (p *process) checkSafraTermination() bool {
	if !p.holdingToken || !p.passive() {
		return false
	}
	if p.rank == 0 {
		// Evaluate the returned token (or the initial one).
		if p.tokenColor == tokenWhite && p.safraColor == tokenWhite && p.tokenCount+p.safraCounter == 0 && p.probedOnce {
			for r := 1; r < p.rt.cfg.Procs; r++ {
				_ = comm.SendPooled(p.ep, r, p.stamped(msgTerm))
			}
			return true
		}
		if p.rt.cfg.Procs == 1 {
			// Single proc: passive with counter 0 means done.
			if p.safraCounter == 0 {
				return true
			}
			return false
		}
		// Re-initiate a white probe.
		p.holdingToken = false
		p.probedOnce = true
		p.safraColor = tokenWhite
		p.sendToken((p.rank+1)%p.rt.cfg.Procs, tokenWhite, 0)
		return false
	}
	// Forward the token, folding in our counter and color.
	color := p.tokenColor
	if p.safraColor == tokenBlack {
		color = tokenBlack
	}
	p.holdingToken = false
	p.safraColor = tokenWhite
	p.sendToken((p.rank+1)%p.rt.cfg.Procs, color, p.tokenCount+p.safraCounter)
	return false
}

func (p *process) sendToken(to int, color byte, count int64) {
	buf := comm.GetBuffer(msgHeaderSize + 9)[:msgHeaderSize+9]
	stampHeader(buf, msgToken, p.round)
	buf[msgHeaderSize] = color
	binary.LittleEndian.PutUint64(buf[msgHeaderSize+1:], uint64(count))
	_ = comm.SendPooled(p.ep, to, buf)
}

// workerLoop is one worker goroutine: pop the highest-priority active
// program, run one Alg. 1 cycle, hand produced streams to the master.
func (p *process) workerLoop(w *workerQueue) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for w.heap.Len() == 0 && !p.shutdown {
			w.cond.Wait()
		}
		if p.shutdown {
			p.mu.Unlock()
			return
		}
		ps := w.heap.pop()
		ps.queued = false
		ps.running = true
		p.busyWorkers++
		inbox := ps.inbox
		// Hand the program the recycled buffer for concurrent deliveries;
		// the consumed one is returned below.
		ps.inbox = ps.inboxFree
		ps.inboxFree = nil
		p.mu.Unlock()

		t0 := time.Now()
		if !ps.initialized {
			ps.prog.Init()
			ps.initialized = true
		}
		for _, s := range inbox {
			ps.prog.Input(s)
		}
		ps.prog.Compute()
		var outs []core.Stream
		for {
			s, ok := ps.prog.Output()
			if !ok {
				break
			}
			outs = append(outs, s)
		}
		halt := ps.prog.VoteToHalt()
		busy := time.Since(t0)
		// Drop payload references before recycling the buffer.
		clear(inbox)

		p.mu.Lock()
		// Busy time is tracked under the lock: the master reads it at round
		// boundaries while this goroutine stays alive for the next round.
		w.busy += busy
		if ps.inboxFree == nil {
			ps.inboxFree = inbox[:0]
		}
		p.stats.Cycles++
		ps.running = false
		if halt && len(ps.inbox) == 0 {
			ps.active = false
			p.activePrograms--
			w.load--
		} else {
			// Reentrant continuation: stay on this worker, requeue.
			ps.queued = true
			w.heap.push(ps)
		}
		p.mu.Unlock()

		if len(outs) > 0 {
			p.results <- workerResult{streams: outs}
		}
		p.mu.Lock()
		p.busyWorkers--
		p.mu.Unlock()
	}
}

// progHeap is a max-heap on (prio, seq).
type progHeap []*progState

func (h progHeap) less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h *progHeap) push(ps *progState) {
	*h = append(*h, ps)
	ps.index = len(*h) - 1
	h.up(ps.index)
}

func (h *progHeap) pop() *progState {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	old[0].index = 0
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	return top
}

func (h progHeap) Len() int { return len(h) }

func (h progHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].index = i
		h[parent].index = parent
		i = parent
	}
}

func (h progHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		h[i].index = i
		h[smallest].index = smallest
		i = smallest
	}
}
