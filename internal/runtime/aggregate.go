// Message aggregation (paper §IV): instead of sending every remotely
// routed stream as its own transport message, the master coalesces
// streams per destination rank into packed multi-stream frames. Fine
// patch-granular sweeps emit very many small boundary-flux streams; the
// per-message cost (latency, header, matching) dominates unless they are
// batched. A StreamBatcher holds the pending streams of one destination,
// sharded by target program, and flushes on three triggers:
//
//   - size: the pending payload reaches MaxBatchBytes;
//   - count: the pending stream count reaches MaxBatchStreams;
//   - deadline: the oldest pending stream has waited FlushInterval, or
//     the process has gone quiescent — so termination detection never
//     stalls behind a half-full batch.
package runtime

import (
	"time"

	"jsweep/internal/core"
)

// AggregationConfig holds the outbound message-aggregation knobs.
type AggregationConfig struct {
	// Enabled turns stream aggregation on. When off, every routeStreams
	// call sends its remote streams immediately (the pre-aggregation
	// behaviour).
	Enabled bool
	// MaxBatchStreams flushes a destination once this many streams are
	// pending (default 64).
	MaxBatchStreams int
	// MaxBatchBytes flushes a destination once the pending encoded size
	// reaches this many bytes (default 64 KiB).
	MaxBatchBytes int
	// FlushInterval bounds how long a pending stream may wait before the
	// master force-flushes its batch (default 200µs). It is the liveness
	// bound: downstream ranks see their inputs at most one interval after
	// production even when batches never fill.
	FlushInterval time.Duration
	// Shards is the number of per-destination routing shards; streams are
	// sharded by target program key so the receiver can unpack shards
	// independently (default 1).
	Shards int
}

// withDefaults fills unset knobs with their defaults.
func (c AggregationConfig) withDefaults() AggregationConfig {
	if c.MaxBatchStreams <= 0 {
		c.MaxBatchStreams = 64
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 64 << 10
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// FlushReason says what triggered a batch flush.
type FlushReason int

const (
	// FlushSize fired because the batch hit MaxBatchBytes or
	// MaxBatchStreams.
	FlushSize FlushReason = iota
	// FlushDeadline fired because the oldest pending stream aged past
	// FlushInterval or the process went quiescent.
	FlushDeadline
)

// StreamBatcher accumulates outbound streams for one destination rank and
// packs them into aggregated frames. It is not safe for concurrent use;
// the owning master serializes access (one batcher per destination per
// process, the sharding is inside the frame).
type StreamBatcher struct {
	dest   int
	cfg    AggregationConfig
	shards [][]core.Stream

	pendingStreams int
	pendingBytes   int // encoded frame size of the pending streams
	oldest         time.Time
}

// NewStreamBatcher creates a batcher for destination rank dest. Zero
// config fields take their defaults.
func NewStreamBatcher(dest int, cfg AggregationConfig) *StreamBatcher {
	cfg = cfg.withDefaults()
	return &StreamBatcher{
		dest:   dest,
		cfg:    cfg,
		shards: make([][]core.Stream, cfg.Shards),
	}
}

// Dest returns the destination rank this batcher feeds.
func (b *StreamBatcher) Dest() int { return b.dest }

// shardOf routes a stream to its frame shard by target program key.
func (b *StreamBatcher) shardOf(s *core.Stream) int {
	if b.cfg.Shards == 1 {
		return 0
	}
	// FNV-1a over the target key: stable, cheap, spreads patch/task pairs.
	h := uint32(2166136261)
	for _, v := range [2]uint32{uint32(s.TgtPatch), uint32(s.TgtTask)} {
		for i := 0; i < 4; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= 16777619
		}
	}
	return int(h % uint32(b.cfg.Shards))
}

// Add appends a stream to the batch at time now and reports whether a
// size/count trigger fired: the caller must Flush before sending more
// work elsewhere.
func (b *StreamBatcher) Add(now time.Time, s core.Stream) (full bool) {
	if b.pendingStreams == 0 {
		b.oldest = now
		b.pendingBytes = core.FrameHeaderSize + 4*len(b.shards)
	}
	sh := b.shardOf(&s)
	b.shards[sh] = append(b.shards[sh], s)
	b.pendingStreams++
	b.pendingBytes += core.EncodedStreamSize(&s)
	return b.pendingStreams >= b.cfg.MaxBatchStreams || b.pendingBytes >= b.cfg.MaxBatchBytes
}

// Pending returns the number of buffered streams.
func (b *StreamBatcher) Pending() int { return b.pendingStreams }

// Full reports whether a size/count flush trigger has been reached.
func (b *StreamBatcher) Full() bool {
	return b.pendingStreams >= b.cfg.MaxBatchStreams || b.pendingBytes >= b.cfg.MaxBatchBytes
}

// PendingBytes returns the encoded size the next flush would produce
// (0 when empty).
func (b *StreamBatcher) PendingBytes() int {
	if b.pendingStreams == 0 {
		return 0
	}
	return b.pendingBytes
}

// Expired reports whether the oldest pending stream has waited at least
// FlushInterval at time now.
func (b *StreamBatcher) Expired(now time.Time) bool {
	return b.pendingStreams > 0 && now.Sub(b.oldest) >= b.cfg.FlushInterval
}

// Deadline returns the time by which the batch must flush; ok=false when
// nothing is pending.
func (b *StreamBatcher) Deadline() (t time.Time, ok bool) {
	if b.pendingStreams == 0 {
		return time.Time{}, false
	}
	return b.oldest.Add(b.cfg.FlushInterval), true
}

// Flush encodes the pending streams as one aggregated frame appended to
// dst, resets the batcher, and returns the extended buffer plus the
// flushed stream count. With nothing pending it returns dst unchanged and
// n=0.
func (b *StreamBatcher) Flush(dst []byte) (buf []byte, n int) {
	if b.pendingStreams == 0 {
		return dst, 0
	}
	n = b.pendingStreams
	dst = core.EncodeFrame(dst, b.shards)
	for i := range b.shards {
		b.shards[i] = b.shards[i][:0]
	}
	b.pendingStreams = 0
	b.pendingBytes = 0
	return dst, n
}
