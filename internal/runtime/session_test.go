package runtime

// White-box session-lifecycle tests: multi-round reuse of one Runtime,
// the termination detectors' state across Reset, and the quiescence
// flush on rounds after the first. These run in package runtime so they
// can inspect per-process detector state directly.

import (
	"testing"
	"time"

	"jsweep/internal/testprog"
)

// buildGrid registers a W×H accumulator grid round-robin across procs.
func buildGrid(t *testing.T, rt *Runtime, w, h, procs int) ([]*testprog.Accumulator, *testprog.Results) {
	t.Helper()
	spec := testprog.GridSpec{W: w, H: h}
	progs, sink := spec.Build()
	for i, a := range progs {
		if err := rt.Register(a.Key, a, 0, i%procs); err != nil {
			t.Fatal(err)
		}
	}
	return progs, sink
}

// checkGrid verifies every node value against the closed-form result.
func checkGrid(t *testing.T, round int, w, h int, sink *testprog.Results) {
	t.Helper()
	spec := testprog.GridSpec{W: w, H: h}
	for k, want := range spec.Want() {
		got, ok := sink.Get(k)
		if !ok || got != want {
			t.Fatalf("round %d: %v = %d (ok=%v), want %d", round, k, got, ok, want)
		}
	}
}

// runRoundTimeout runs one round with a watchdog so a termination bug
// fails fast instead of hanging the whole test binary.
func runRoundTimeout(t *testing.T, rt *Runtime) Stats {
	t.Helper()
	type outcome struct {
		st  Stats
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		st, err := rt.RunRound()
		ch <- outcome{st, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatal(o.err)
		}
		return o.st
	case <-time.After(60 * time.Second):
		t.Fatal("round did not terminate within 60s")
		return Stats{}
	}
}

// TestSessionMultiRoundStress drives one persistent runtime through ≥20
// rounds on a 4-proc × 4-worker topology under both termination
// detectors — the state-leak regression test (run under -race in CI).
func TestSessionMultiRoundStress(t *testing.T) {
	const w, h, procs, workers, rounds = 12, 12, 4, 4, 20
	for _, term := range []TerminationMode{Workload, Safra} {
		t.Run(term.String(), func(t *testing.T) {
			rt, err := New(Config{Procs: procs, Workers: workers, Termination: term})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			progs, sink := buildGrid(t, rt, w, h, procs)
			for round := 1; round <= rounds; round++ {
				if round > 1 {
					for _, a := range progs {
						a.Reset()
					}
					if err := rt.Reset(); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}
				st := runRoundTimeout(t, rt)
				if st.RoundsRun != 1 {
					t.Fatalf("round stats RoundsRun = %d", st.RoundsRun)
				}
				checkGrid(t, round, w, h, sink)
			}
			for _, a := range progs {
				if a.InitSeen != 1 {
					t.Fatalf("program %v: Init called %d times across %d rounds", a.Key, a.InitSeen, rounds)
				}
			}
			cum := rt.CumulativeStats()
			if cum.RoundsRun != rounds || rt.RoundsRun() != rounds {
				t.Errorf("cumulative RoundsRun = %d (RoundsRun() = %d), want %d", cum.RoundsRun, rt.RoundsRun(), rounds)
			}
			if cum.Cycles < int64(rounds)*int64(w*h) {
				t.Errorf("cumulative cycles %d too low for %d rounds of %d programs", cum.Cycles, rounds, w*h)
			}
			last := rt.LastRoundStats()
			if last.Cycles <= 0 || last.Cycles >= cum.Cycles {
				t.Errorf("last round cycles %d vs cumulative %d", last.Cycles, cum.Cycles)
			}
		})
	}
}

// TestResetClearsDetectorState checks the round-boundary contract of both
// detectors: after Reset every process is all-white with balanced
// counters, no token, no done reports, and all programs reactivated.
func TestResetClearsDetectorState(t *testing.T) {
	const w, h, procs = 6, 6, 3
	rt, err := New(Config{Procs: procs, Workers: 2, Termination: Safra})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	progs, sink := buildGrid(t, rt, w, h, procs)
	runRoundTimeout(t, rt)
	checkGrid(t, 1, w, h, sink)

	// Simulate the worst-case end-of-round residue of a process that went
	// active→passive late: blackened, with a locally unbalanced counter
	// and stale token bookkeeping (globally the counters sum to zero).
	rt.procs[1].safraColor = tokenBlack
	rt.procs[1].safraCounter = 7
	rt.procs[2].safraColor = tokenBlack
	rt.procs[2].safraCounter = -7
	rt.procs[0].tokenCount = 3
	rt.procs[0].probedOnce = true

	for _, a := range progs {
		a.Reset()
	}
	if err := rt.Reset(); err != nil {
		t.Fatal(err)
	}
	for r, p := range rt.procs {
		if p.safraColor != tokenWhite || p.safraCounter != 0 {
			t.Errorf("rank %d: color=%d counter=%d after Reset", r, p.safraColor, p.safraCounter)
		}
		if p.holdingToken || p.tokenColor != tokenWhite || p.tokenCount != 0 || p.probedOnce {
			t.Errorf("rank %d: stale token state after Reset", r)
		}
		if len(p.doneReports) != 0 || p.sentDone {
			t.Errorf("rank %d: stale workload state after Reset", r)
		}
		if p.activePrograms != len(p.progs) {
			t.Errorf("rank %d: %d of %d programs active after Reset", r, p.activePrograms, len(p.progs))
		}
	}

	// The follow-up round must reach quiescence again: the fresh white
	// probe may not terminate off the first round's stale token.
	runRoundTimeout(t, rt)
	checkGrid(t, 2, w, h, sink)
	if got := rt.RoundsRun(); got != 2 {
		t.Errorf("RoundsRun = %d, want 2", got)
	}
}

// TestSafraSingleProcAcrossRounds exercises the rank-0-only termination
// edge case (passive with counter 0, no token ring) across a Reset.
func TestSafraSingleProcAcrossRounds(t *testing.T) {
	rt, err := New(Config{Procs: 1, Workers: 2, Termination: Safra})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	progs, sink := buildGrid(t, rt, 4, 4, 1)
	for round := 1; round <= 3; round++ {
		if round > 1 {
			for _, a := range progs {
				a.Reset()
			}
			if err := rt.Reset(); err != nil {
				t.Fatal(err)
			}
		}
		runRoundTimeout(t, rt)
		checkGrid(t, round, 4, 4, sink)
	}
}

// TestQuiescentFlushFiresOnLaterRounds is the regression test that the
// quiescence flush — the only thing draining a batch that can never fill
// — still fires on round 2 and beyond. Size and deadline triggers are
// pushed out of reach, so any flush bookkeeping leaking across Reset
// would deadlock the follow-up rounds.
func TestQuiescentFlushFiresOnLaterRounds(t *testing.T) {
	const w, h, procs = 6, 6, 3
	rt, err := New(Config{
		Procs: procs, Workers: 2, Termination: Workload,
		Aggregation: AggregationConfig{
			Enabled:         true,
			MaxBatchStreams: 1 << 20,
			MaxBatchBytes:   1 << 30,
			FlushInterval:   time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	progs, sink := buildGrid(t, rt, w, h, procs)
	for round := 1; round <= 3; round++ {
		if round > 1 {
			for _, a := range progs {
				a.Reset()
			}
			if err := rt.Reset(); err != nil {
				t.Fatal(err)
			}
		}
		st := runRoundTimeout(t, rt)
		checkGrid(t, round, w, h, sink)
		if st.RemoteStreams == 0 {
			t.Fatalf("round %d: no remote streams — test not exercising batching", round)
		}
		if st.FlushOnDeadline == 0 {
			t.Errorf("round %d: no quiescence flushes despite unreachable size/deadline triggers", round)
		}
		if st.StreamsBatched != st.RemoteStreams {
			t.Errorf("round %d: %d of %d remote streams batched", round, st.StreamsBatched, st.RemoteStreams)
		}
	}
}

// TestSessionAPIMisuse pins the lifecycle error contract.
func TestSessionAPIMisuse(t *testing.T) {
	rt, err := New(Config{Procs: 2, Workers: 1, Termination: Workload})
	if err != nil {
		t.Fatal(err)
	}
	progs, _ := buildGrid(t, rt, 3, 3, 2)
	runRoundTimeout(t, rt)

	// A second round without Reset must be refused.
	if _, err := rt.RunRound(); err == nil {
		t.Error("RunRound without Reset should fail")
	}
	// Registration is closed once the session started.
	if err := rt.Register(progs[0].Key, progs[0], 0, 0); err == nil {
		t.Error("Register after session start should fail")
	}
	// Reset + round still works after the failed attempts.
	for _, a := range progs {
		a.Reset()
	}
	if err := rt.Reset(); err != nil {
		t.Fatal(err)
	}
	runRoundTimeout(t, rt)

	// Close is idempotent and ends the session.
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunRound(); err == nil {
		t.Error("RunRound after Close should fail")
	}
	if err := rt.Reset(); err == nil {
		t.Error("Reset after Close should fail")
	}
	// Statistics stay readable after Close.
	if rt.CumulativeStats().RoundsRun != 2 {
		t.Errorf("cumulative RoundsRun = %d, want 2", rt.CumulativeStats().RoundsRun)
	}
}

// TestSessionPingPongAcrossRounds reuses the reentrant zig-zag programs
// (partial computation, paper Fig. 4) across rounds: cross-process
// mutual dependencies must replay identically in every round.
func TestSessionPingPongAcrossRounds(t *testing.T) {
	for _, term := range []TerminationMode{Workload, Safra} {
		t.Run(term.String(), func(t *testing.T) {
			sink := testprog.NewResults()
			ka := testprog.GridSpec{W: 2, H: 1}.Key(0, 0)
			kb := testprog.GridSpec{W: 2, H: 1}.Key(1, 0)
			const roundsPP = 9
			a := &testprog.PingPong{Key: ka, Peer: kb, Rounds: roundsPP, Starter: true, Sink: sink}
			bp := &testprog.PingPong{Key: kb, Peer: ka, Rounds: roundsPP, Sink: sink}
			rt, err := New(Config{Procs: 2, Workers: 2, Termination: term})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			if err := rt.Register(ka, a, 0, 0); err != nil {
				t.Fatal(err)
			}
			if err := rt.Register(kb, bp, 0, 1); err != nil {
				t.Fatal(err)
			}
			for round := 1; round <= 5; round++ {
				if round > 1 {
					a.Reset()
					bp.Reset()
					if err := rt.Reset(); err != nil {
						t.Fatal(err)
					}
				}
				runRoundTimeout(t, rt)
				va, _ := sink.Get(ka)
				vb, _ := sink.Get(kb)
				if va != 2*roundsPP-2 || vb != 2*roundsPP-1 {
					t.Fatalf("round %d: a=%d b=%d, want %d,%d", round, va, vb, 2*roundsPP-2, 2*roundsPP-1)
				}
			}
		})
	}
}
