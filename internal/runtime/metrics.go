package runtime

import "jsweep/internal/obs"

// runtimeMetrics is the runtime's hook into the obs registry. The hot
// per-message path stays untouched: a finished round's Stats are folded
// into the process-wide counters once per RunRound, which is the whole
// overhead contract — O(1) atomic adds per round, not per message. Only
// the rare stash path (an early next-round arrival) counts inline.
// Handles resolve from obs.Default() at New; the zero value no-ops.
type runtimeMetrics struct {
	rounds        *obs.Counter   // jsweep_runtime_rounds_total
	roundDur      *obs.Histogram // jsweep_runtime_round_seconds
	cycles        *obs.Counter   // jsweep_runtime_cycles_total
	localStreams  *obs.Counter   // jsweep_runtime_streams_total{locality=local}
	remoteStreams *obs.Counter   // jsweep_runtime_streams_total{locality=remote}
	messages      *obs.Counter   // jsweep_runtime_messages_total
	bytesSent     *obs.Counter   // jsweep_runtime_bytes_sent_total
	batches       *obs.Counter   // jsweep_runtime_batches_total
	batchedStrms  *obs.Counter   // jsweep_runtime_streams_batched_total
	deadlineFlush *obs.Counter   // jsweep_runtime_deadline_flushes_total
	stashed       *obs.Counter   // jsweep_runtime_messages_stashed_total
}

func newRuntimeMetrics(r *obs.Registry) runtimeMetrics {
	if r == nil {
		return runtimeMetrics{}
	}
	streams := r.CounterVec("jsweep_runtime_streams_total",
		"Streams routed by destination locality.", "locality")
	return runtimeMetrics{
		rounds: r.Counter("jsweep_runtime_rounds_total",
			"Completed runtime rounds (one source iteration each)."),
		roundDur: r.Histogram("jsweep_runtime_round_seconds",
			"Wall-clock duration of one round."),
		cycles: r.Counter("jsweep_runtime_cycles_total",
			"Patch-program cycles executed."),
		localStreams:  streams.With("local"),
		remoteStreams: streams.With("remote"),
		messages: r.Counter("jsweep_runtime_messages_total",
			"Data-lane messages sent (batched frames count once)."),
		bytesSent: r.Counter("jsweep_runtime_bytes_sent_total",
			"Payload bytes handed to the transport."),
		batches: r.Counter("jsweep_runtime_batches_total",
			"Aggregated multi-stream frames sent."),
		batchedStrms: r.Counter("jsweep_runtime_streams_batched_total",
			"Streams carried inside aggregated frames."),
		deadlineFlush: r.Counter("jsweep_runtime_deadline_flushes_total",
			"Batcher flushes forced by the aggregation deadline."),
		stashed: r.Counter("jsweep_runtime_messages_stashed_total",
			"Early next-round messages stashed at arrival and replayed later."),
	}
}

// observeRound folds one finished round's Stats into the counters.
func (m runtimeMetrics) observeRound(st Stats) {
	m.rounds.Inc()
	m.roundDur.Observe(st.Wall.Seconds())
	m.cycles.Add(st.Cycles)
	m.localStreams.Add(st.LocalStreams)
	m.remoteStreams.Add(st.RemoteStreams)
	m.messages.Add(st.Messages)
	m.bytesSent.Add(st.BytesSent)
	m.batches.Add(st.BatchesSent)
	m.batchedStrms.Add(st.StreamsBatched)
	m.deadlineFlush.Add(st.FlushOnDeadline)
}
