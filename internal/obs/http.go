package obs

import "net/http"

// PrometheusHandler serves the concatenated Prometheus text exposition
// of regs (nil entries are skipped). Metric names across the registries
// must be disjoint; the convention here is one prefix per subsystem
// (jsweep_serve_*, jsweep_net_*, jsweep_runtime_*, jsweep_solve_*).
func PrometheusHandler(regs ...*Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WritePrometheus(w); err != nil {
				return // client went away; nothing useful to do
			}
		}
	}
}

// StatusHandler serves the merged JSON snapshot of regs — the /statusz
// body: every metric child with its labels and current value.
func StatusHandler(regs ...*Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := []MetricSnapshot{}
		for _, r := range regs {
			snap = append(snap, r.Snapshot()...)
		}
		writeJSONSnap(w, snap)
	}
}

// HealthHandler serves a constant "ok" body; the liveness probe.
func HealthHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	}
}
