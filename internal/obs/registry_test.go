package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Fatalf("re-registering returned a different child")
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	r.GaugeFunc("test_sampled", "sampled", func() int64 { return 42 })
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test_sampled 42") {
		t.Fatalf("GaugeFunc not sampled in exposition:\n%s", buf.String())
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	if r.CounterVec("x", "", "l") != nil || r.GaugeVec("x", "", "l") != nil || r.HistogramVec("x", "", "l") != nil {
		t.Fatal("nil registry must hand out nil vecs")
	}
	r.GaugeFunc("x", "", func() int64 { return 0 }) // must not panic
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}

	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	var cv *CounterVec
	if cv.With("a") != nil {
		t.Fatal("nil CounterVec.With must return nil")
	}
	var gv *GaugeVec
	if gv.With("a") != nil {
		t.Fatal("nil GaugeVec.With must return nil")
	}
	var hv *HistogramVec
	if hv.With("a") != nil {
		t.Fatal("nil HistogramVec.With must return nil")
	}
}

func TestVecChildrenAndCaching(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_frames_total", "frames", "tier", "lane")
	a := v.With("tcp", "data")
	b := v.With("tcp", "data")
	if a != b {
		t.Fatal("vec children must be cached")
	}
	v.With("shm", "oob").Add(3)
	a.Add(2)

	gv := r.GaugeVec("test_peers", "peers", "tier")
	gv.With("uds").Set(4)

	hv := r.HistogramVec("test_wait_seconds", "wait", "code")
	hv.With("ok").Observe(0.5)
	if h2 := hv.With("ok"); h2.Count() != 1 {
		t.Fatalf("histogram child not cached: count=%d", h2.Count())
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_v", "", "a", "b")
	mustPanic(t, func() { v.With("only-one") })
	gv := r.GaugeVec("test_gv", "", "a")
	mustPanic(t, func() { gv.With() })
	hv := r.HistogramVec("test_hv", "", "a")
	mustPanic(t, func() { hv.With("x", "y") })
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_conflict", "")
	mustPanic(t, func() { r.Gauge("test_conflict", "") })
	mustPanic(t, func() { r.CounterVec("test_conflict", "", "l") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "")
	g := r.Gauge("test_conc_gauge", "")
	h := r.Histogram("test_conc_hist", "")
	v := r.CounterVec("test_conc_vec", "", "k")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []string{"a", "b"}[w%2]
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%16) + 0.5)
				v.With(key).Inc()
			}
		}(w)
	}
	// Concurrent exposition must not race with writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf strings.Builder
			_ = r.WritePrometheus(&buf)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
	if got := v.With("a").Value() + v.With("b").Value(); got != workers*per {
		t.Fatalf("vec total = %d, want %d", got, workers*per)
	}
	var wantSum float64
	for i := 0; i < per; i++ {
		wantSum += float64(workers) * (float64(i%16) + 0.5)
	}
	if h.Sum() != wantSum {
		t.Fatalf("hist sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestPrometheusGolden pins the exact exposition text for a small
// registry: family ordering, HELP/TYPE lines, label rendering and
// escaping, cumulative histogram buckets.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Gauge("aaa_depth", "queue depth").Set(3)
	v := r.CounterVec("bbb_frames_total", "frames by tier", "tier")
	v.With("tcp").Add(7)
	v.With("shm").Add(2)
	r.CounterVec("ccc_weird", "escaping", "msg").With("say \"hi\"\\\n").Inc()
	h := r.Histogram("ddd_wait_seconds", "wait")
	h.Observe(0.75) // bucket le=1
	h.Observe(0.75)
	h.Observe(3) // bucket le=4
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aaa_depth queue depth
# TYPE aaa_depth gauge
aaa_depth 3
# HELP bbb_frames_total frames by tier
# TYPE bbb_frames_total counter
bbb_frames_total{tier="shm"} 2
bbb_frames_total{tier="tcp"} 7
# HELP ccc_weird escaping
# TYPE ccc_weird counter
ccc_weird{msg="say \"hi\"\\\n"} 1
# HELP ddd_wait_seconds wait
# TYPE ddd_wait_seconds histogram
ddd_wait_seconds_bucket{le="1"} 2
ddd_wait_seconds_bucket{le="4"} 3
ddd_wait_seconds_bucket{le="+Inf"} 3
ddd_wait_seconds_sum 4.5
ddd_wait_seconds_count 3
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "help here").Add(5)
	r.CounterVec("s_vec_total", "", "k").With("x").Inc()
	h := r.Histogram("s_hist", "")
	h.Observe(2)
	h.Observe(1000)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if m := byName["s_total"]; m.Value != 5 || m.Kind != KindCounter || m.Help != "help here" {
		t.Fatalf("s_total snapshot wrong: %+v", m)
	}
	if m := byName["s_vec_total"]; m.Labels["k"] != "x" || m.Value != 1 {
		t.Fatalf("s_vec_total snapshot wrong: %+v", m)
	}
	m := byName["s_hist"]
	if m.Count != 2 || m.Sum != 1002 || len(m.Buckets) != 2 {
		t.Fatalf("s_hist snapshot wrong: %+v", m)
	}

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []MetricSnapshot
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d entries, want 3", len(decoded))
	}
}

func TestDefaultRegistrySwap(t *testing.T) {
	orig := Default()
	defer SetDefault(orig)

	r := NewRegistry()
	if prev := SetDefault(r); prev != orig {
		t.Fatal("SetDefault did not return previous registry")
	}
	if Default() != r {
		t.Fatal("Default() did not observe the swap")
	}
	if prev := SetDefault(nil); prev != r {
		t.Fatal("SetDefault(nil) did not return previous registry")
	}
	if Default() != nil {
		t.Fatal("Default() must be nil after SetDefault(nil)")
	}
	// Handles minted from a disabled default are nil and safe.
	Default().Counter("off_total", "").Inc()
	if prev := SetDefault(r); prev != nil {
		t.Fatal("previous registry should be nil while disabled")
	}
	if Default() != r {
		t.Fatal("re-enabling the default failed")
	}
}

func TestHTTPHandlers(t *testing.T) {
	a := NewRegistry()
	a.Counter("h_a_total", "").Add(1)
	b := NewRegistry()
	b.Gauge("h_b_depth", "").Set(9)

	rec := httptest.NewRecorder()
	PrometheusHandler(a, nil, b)(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("bad content type %q", ct)
	}
	for _, want := range []string{"h_a_total 1", "h_b_depth 9"} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	StatusHandler(a, b)(rec, httptest.NewRequest("GET", "/statusz", nil))
	var snap []MetricSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("statusz not JSON: %v", err)
	}
	if len(snap) != 2 {
		t.Fatalf("statusz has %d entries, want 2", len(snap))
	}

	rec = httptest.NewRecorder()
	HealthHandler()(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Body.String() != "ok\n" {
		t.Fatalf("healthz = %q", rec.Body.String())
	}
}
