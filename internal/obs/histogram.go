package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Histogram buckets are powers of two from 2^histMinExp to 2^histMaxExp
// (inclusive upper bounds), plus an implicit +Inf bucket. The range
// covers ~1µs..~1000s when observing seconds and 1B..1MiB-and-up when
// observing sizes, with ~2x resolution — coarse, but every Observe is
// one Frexp, two atomic adds, and a CAS loop on the sum, which is what
// lets histograms sit next to syscalls on the wire path.
const (
	histMinExp = -20
	histMaxExp = 20
	numBuckets = histMaxExp - histMinExp + 2 // finite buckets + the +Inf bucket
)

// Histogram is a fixed-bucket log-scale histogram. A nil *Histogram is
// a no-op.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex returns the index of the smallest bucket whose upper
// bound 2^i satisfies v <= 2^i, or the +Inf bucket.
func bucketIndex(v float64) int {
	if v <= math.Ldexp(1, histMinExp) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	i := exp
	if frac == 0.5 {
		i = exp - 1 // exact power of two sits in its own bucket
	}
	if i > histMaxExp {
		return numBuckets - 1
	}
	return i - histMinExp
}

// Observe records v. NaN and negative values are dropped — durations
// and sizes are never negative, and poisoning the sum would be worse
// than losing the sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || v < 0 {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration given in seconds; a convenience
// alias that documents the unit at the call site.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// upperBound returns the inclusive upper bound of bucket i.
func upperBound(i int) float64 {
	if i == numBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i)
}

// formatLE renders a bucket bound the way Prometheus expects: decimal,
// no exponent for the magnitudes we produce, "+Inf" for the last.
func formatLE(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// writePrometheus emits the cumulative _bucket/_sum/_count triple for
// one child. Empty buckets are skipped (except +Inf, which is always
// emitted) to keep the exposition readable; cumulative counts stay
// correct because skipping an empty bucket drops no observations.
func (h *Histogram) writePrometheus(w io.Writer, name string, labels, values []string) error {
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		cum += n
		if n == 0 && i != numBuckets-1 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabelSuffix(labels, values, formatLE(upperBound(i))), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, plainLabelSuffix(labels, values), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, plainLabelSuffix(labels, values), h.Count())
	return err
}

func plainLabelSuffix(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, name := range labels {
		if i > 0 {
			s += ","
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		s += name + `="` + escapeLabel(v) + `"`
	}
	return s + "}"
}

func bucketLabelSuffix(labels, values []string, le string) string {
	s := "{"
	for i, name := range labels {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		s += name + `="` + escapeLabel(v) + `",`
	}
	return s + `le="` + le + `"}`
}

// snapshot returns count, sum, and the non-empty buckets with
// non-cumulative counts, for /statusz.
func (h *Histogram) snapshot() (count uint64, sum float64, buckets []BucketSnapshot) {
	for i := 0; i < numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			buckets = append(buckets, BucketSnapshot{LE: upperBound(i), Count: n})
		}
	}
	return h.Count(), h.Sum(), buckets
}
