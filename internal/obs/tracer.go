package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one traced occurrence: a job lifecycle edge ("submitted",
// "granted", "done"), a sweep phase ("iter.sweep"), or anything else a
// caller wants on the timeline. Fields beyond Name are optional.
type Event struct {
	// Time is when the event happened. Emit stamps it if zero.
	Time time.Time `json:"ts"`
	// Name is the event name, dotted by convention: "job.granted",
	// "iter.sweep".
	Name string `json:"name"`
	// ID scopes the event to a job or node ("job-3", "rank0").
	ID string `json:"id,omitempty"`
	// Iter is the source-iteration number for per-iteration events.
	Iter int `json:"iter,omitempty"`
	// Dur is the span duration for events that close a span
	// (grant-wait, sweep phase), in nanoseconds on the wire.
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Detail is free-form context ("queue-full", "tol=1e-8").
	Detail string `json:"detail,omitempty"`
}

// DefaultTraceCap is the ring capacity NewTracer uses for cap <= 0:
// enough for a long solve's per-iteration phases plus lifecycle edges
// without unbounded growth.
const DefaultTraceCap = 4096

// Tracer records events into a fixed-size ring; once full, the oldest
// events are overwritten and counted as dropped. A nil *Tracer is a
// no-op, so call sites never guard. Safe for concurrent use — Emit
// takes a mutex, which is fine at lifecycle/per-iteration granularity
// (tracing is deliberately not wired into per-message paths).
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	next    int // index of the slot the next Emit writes
	full    bool
	dropped int64
}

// NewTracer returns a tracer holding up to capacity events
// (DefaultTraceCap if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Emit records e, stamping e.Time with the current time if unset.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Event is shorthand for Emit with just a name, id and detail.
func (t *Tracer) Event(name, id, detail string) {
	t.Emit(Event{Name: name, ID: id, Detail: detail})
}

// Span is shorthand for Emit with a duration: an event that closes a
// measured span.
func (t *Tracer) Span(name, id string, d time.Duration) {
	t.Emit(Event{Name: name, ID: id, Dur: d})
}

// Events returns the recorded events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped returns how many events were overwritten after the ring
// filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// WriteJSONL writes the events oldest-first, one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Events())
}

// WriteJSONL writes events one JSON object per line. Split out from the
// Tracer so a trace that traveled as a plain []Event (through a result
// payload) can be dumped the same way.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
