// Package obs is the observability core: a dependency-free metrics
// registry (counters, gauges, log-bucketed histograms, with labeled
// children) plus a fixed-size event tracer for job lifecycle and
// per-iteration sweep phases.
//
// The design contract is that instrumentation is cheap enough to sit on
// per-message hot paths and safe to leave compiled in everywhere:
//
//   - every metric handle is a single atomic word (or a short array of
//     them for histograms) — no locks after creation, no allocation on
//     the update path;
//   - every handle method is nil-safe: a nil *Counter (or *Gauge,
//     *Histogram, *Tracer) is a no-op, so "no registry" costs one
//     predictable branch. SetDefault(nil) turns the whole default
//     surface off, which is how the overhead benchmark measures the
//     instrumented-vs-noop delta;
//   - exposition (Prometheus text, JSON snapshot) walks the registry
//     under a read lock and never blocks writers, which only touch
//     atomics.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind names a metric family's type in snapshots and exposition.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// family is one named metric family: a help string, a kind, and the
// children keyed by their label values ("" for the unlabeled child).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names, fixed at first registration

	mu       sync.Mutex // guards children creation only
	children sync.Map   // label-values key → child (*Counter, *Gauge, *Histogram, or gaugeFunc)
}

// Registry is a named collection of metric families. The zero value is
// not usable; call NewRegistry. All methods are safe for concurrent
// use. Registering the same name twice returns the existing family;
// re-registering with a different kind or label arity panics, since
// that is a programming error no caller can meaningfully handle.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// defaultRegistry is the process-global registry used by packages that
// have no natural owner to hang a registry off (netcomm transports,
// runtime instances). It is swapped atomically so readers never lock.
var defaultRegistry atomic.Pointer[Registry]

func init() { defaultRegistry.Store(NewRegistry()) }

// hasDefault tracks whether SetDefault(nil) disabled the default
// surface; Default returns nil in that state so new handles are no-ops.
var noDefault atomic.Bool

// Default returns the process-global registry, or nil after
// SetDefault(nil). A nil registry hands out nil handles, whose methods
// are all no-ops.
func Default() *Registry {
	if noDefault.Load() {
		return nil
	}
	return defaultRegistry.Load()
}

// SetDefault replaces the process-global registry and returns the
// previous one (nil if the default was disabled). SetDefault(nil)
// disables the default surface entirely: Default() returns nil and
// every handle minted from it is a no-op. Intended for tests and for
// the overhead benchmark; production code leaves the default alone.
func SetDefault(r *Registry) *Registry {
	var prev *Registry
	if !noDefault.Load() {
		prev = defaultRegistry.Load()
	}
	if r == nil {
		noDefault.Store(true)
		return prev
	}
	noDefault.Store(false)
	defaultRegistry.Store(r)
	return prev
}

func (r *Registry) familyFor(name, help string, kind Kind, labels []string) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.fams[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, labels: labels}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%d labels (was %s/%d)",
			name, kind, len(labels), f.kind, len(f.labels)))
	}
	return f
}

// child returns the family child for the given label values, creating
// it with mk on first use. Lookup is a lock-free sync.Map hit on the
// steady state.
func (f *family) child(values []string, mk func() any) any {
	key := labelKey(values)
	if c, ok := f.children.Load(key); ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children.Load(key); ok {
		return c
	}
	c := mk()
	f.children.Store(key, c)
	return c
}

// labelKey joins label values with a separator that cannot appear in a
// reasonable label value. Values are escaped at exposition time, not
// here, so the hot path does no scanning.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func splitLabelKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x1f")
}

// --- Counter ---

// Counter is a monotonically increasing count. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative n is ignored — counters only go up.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the unlabeled counter for name, registering the
// family on first use. Nil-receiver safe: a nil registry returns a nil
// handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindCounter, nil)
	return f.child(nil, func() any { return new(Counter) }).(*Counter)
}

// --- Gauge ---

// Gauge is a value that can go up and down. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Gauge returns the unlabeled gauge for name, registering the family on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindGauge, nil)
	return f.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// gaugeFunc samples a callback at exposition time. Used for values that
// already live behind the owner's mutex (queue depth, pool size) where
// mirroring into an atomic would just invite drift.
type gaugeFunc struct{ fn func() int64 }

// GaugeFunc registers a gauge whose value is sampled from fn at
// exposition time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, KindGauge, nil)
	f.child(nil, func() any { return gaugeFunc{fn} })
}

// --- Vectors ---

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.familyFor(name, help, KindCounter, labels)}
}

// With returns the child counter for the given label values. The child
// is cached; callers on hot paths should resolve it once and keep the
// handle. Panics if the value count does not match the label names.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.familyFor(name, help, KindGauge, labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r.familyFor(name, help, KindHistogram, labels)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(values, func() any { return newHistogram() }).(*Histogram)
}

// Histogram returns the unlabeled histogram for name.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindHistogram, nil)
	return f.child(nil, func() any { return newHistogram() }).(*Histogram)
}

// --- Exposition ---

// sortedFamilies returns the families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

type childRow struct {
	key string
	c   any
}

func (f *family) sortedChildren() []childRow {
	var rows []childRow
	f.children.Range(func(k, v any) bool {
		rows = append(rows, childRow{k.(string), v})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	return rows
}

// labelSuffix renders {k="v",...} for a child key, escaping values per
// the Prometheus text format.
func (f *family) labelSuffix(key string) string {
	if len(f.labels) == 0 {
		return ""
	}
	values := splitLabelKey(key)
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Families are emitted in name order, children
// in label order, so output is deterministic given fixed values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, row := range f.sortedChildren() {
			suffix := f.labelSuffix(row.key)
			var err error
			switch c := row.c.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, c.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, c.Value())
			case gaugeFunc:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, c.fn())
			case *Histogram:
				err = c.writePrometheus(w, f.name, f.labels, splitLabelKey(row.key))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// MetricSnapshot is one child's state in a registry snapshot.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   Kind              `json:"kind"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"`
	// Histogram-only fields.
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one non-empty histogram bucket: the inclusive upper
// bound and the (non-cumulative) count of observations in it.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot returns every child in the registry, in deterministic order.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	var out []MetricSnapshot
	for _, f := range r.sortedFamilies() {
		for _, row := range f.sortedChildren() {
			m := MetricSnapshot{Name: f.name, Kind: f.kind, Help: f.help}
			if len(f.labels) > 0 {
				values := splitLabelKey(row.key)
				m.Labels = make(map[string]string, len(f.labels))
				for i, name := range f.labels {
					if i < len(values) {
						m.Labels[name] = values[i]
					}
				}
			}
			switch c := row.c.(type) {
			case *Counter:
				m.Value = c.Value()
			case *Gauge:
				m.Value = c.Value()
			case gaugeFunc:
				m.Value = c.fn()
			case *Histogram:
				m.Count, m.Sum, m.Buckets = c.snapshot()
			}
			out = append(out, m)
		}
	}
	return out
}

// WriteJSON writes the Snapshot as indented JSON (the /statusz body).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []MetricSnapshot{}
	}
	return writeJSONSnap(w, snap)
}

func writeJSONSnap(w io.Writer, snap []MetricSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
