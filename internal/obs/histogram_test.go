package obs

import (
	"math"
	"strings"
	"testing"
)

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int // expected bucket index
	}{
		{0, 0},
		{math.Ldexp(1, histMinExp), 0},       // exactly the smallest bound
		{math.Ldexp(1, histMinExp) * 1.1, 1}, // just above it
		{0.5, bucketOf(t, -1)},               // exact power of two → own bucket
		{1, bucketOf(t, 0)},
		{1.0001, bucketOf(t, 1)},
		{3, bucketOf(t, 2)},
		{4, bucketOf(t, 2)},
		{1 << 20, bucketOf(t, 20)},           // largest finite bound
		{float64(1<<20) + 1, numBuckets - 1}, // overflows to +Inf
		{1e300, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

// bucketOf maps an exponent to its bucket index, for readable cases.
func bucketOf(t *testing.T, exp int) int {
	t.Helper()
	return exp - histMinExp
}

func TestHistogramRejectsBadValues(t *testing.T) {
	h := newHistogram()
	h.Observe(math.NaN())
	h.Observe(-1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("NaN/negative must be dropped: count=%d sum=%g", h.Count(), h.Sum())
	}
	h.Observe(0)
	if h.Count() != 1 {
		t.Fatal("zero is a valid observation")
	}
}

func TestHistogramCumulativeExposition(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("t_hist_seconds", "help", "lane").With("data")
	for i := 0; i < 10; i++ {
		h.Observe(0.001) // le=0.001953125 (2^-9)
	}
	h.Observe(100)   // le=128
	h.Observe(1e300) // +Inf
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`t_hist_seconds_bucket{lane="data",le="0.001953125"} 10`,
		`t_hist_seconds_bucket{lane="data",le="128"} 11`,
		`t_hist_seconds_bucket{lane="data",le="+Inf"} 12`,
		`t_hist_seconds_count{lane="data"} 12`,
	}
	for _, w := range want {
		if !strings.Contains(buf.String(), w) {
			t.Errorf("missing %q in:\n%s", w, buf.String())
		}
	}
	// Cumulative counts must be monotonically non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "t_hist_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("cannot parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
	}
}

// fmtSscan pulls the trailing integer off an exposition line.
func fmtSscan(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*n, err = parseInt(line[i+1:])
	return 1, err
}

func parseInt(s string) (int64, error) {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

var errBadInt = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "bad int" }

func TestFormatLE(t *testing.T) {
	if got := formatLE(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatLE(+Inf) = %q", got)
	}
	if got := formatLE(0.5); got != "0.5" {
		t.Fatalf("formatLE(0.5) = %q", got)
	}
	if got := formatLE(1048576); got != "1.048576e+06" {
		// %g switches to exponent form for 2^20; pin it so the
		// exposition stays stable.
		t.Fatalf("formatLE(2^20) = %q", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.125)
		}
	})
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
