package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerBasics(t *testing.T) {
	tr := NewTracer(8)
	tr.Event("job.submitted", "job-1", "")
	tr.Span("job.grant_wait", "job-1", 5*time.Millisecond)
	tr.Emit(Event{Name: "iter.sweep", ID: "rank0", Iter: 3, Dur: time.Millisecond})

	evs := tr.Events()
	if len(evs) != 3 || tr.Len() != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Name != "job.submitted" || evs[0].Time.IsZero() {
		t.Fatalf("first event wrong: %+v", evs[0])
	}
	if evs[1].Dur != 5*time.Millisecond {
		t.Fatalf("span duration lost: %+v", evs[1])
	}
	if evs[2].Iter != 3 {
		t.Fatalf("iter lost: %+v", evs[2])
	}
	if tr.Dropped() != 0 {
		t.Fatal("nothing should be dropped yet")
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Event(fmt.Sprintf("e%d", i), "", "")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := fmt.Sprintf("e%d", 6+i); e.Name != want {
			t.Fatalf("event %d = %q, want %q (oldest-first after wrap)", i, e.Name, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
}

func TestTracerDefaultCapAndNil(t *testing.T) {
	tr := NewTracer(0)
	if len(tr.ring) != DefaultTraceCap {
		t.Fatalf("default cap = %d, want %d", len(tr.ring), DefaultTraceCap)
	}

	var nilTr *Tracer
	nilTr.Emit(Event{Name: "x"})
	nilTr.Event("x", "", "")
	nilTr.Span("x", "", time.Second)
	if nilTr.Events() != nil || nilTr.Dropped() != 0 || nilTr.Len() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	if err := nilTr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Event("e", "id", "")
				_ = tr.Events()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Fatalf("len = %d, want full ring of 64", tr.Len())
	}
	if tr.Dropped() != 8*100-64 {
		t.Fatalf("dropped = %d, want %d", tr.Dropped(), 8*100-64)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.Emit(Event{Time: base, Name: "job.submitted", ID: "job-1"})
	tr.Emit(Event{Time: base.Add(time.Second), Name: "job.done", ID: "job-1", Dur: 900 * time.Millisecond, Detail: "converged"})

	var buf strings.Builder
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if !lines[0].Time.Equal(base) || lines[0].Name != "job.submitted" {
		t.Fatalf("line 0 round-trip wrong: %+v", lines[0])
	}
	if lines[1].Dur != 900*time.Millisecond || lines[1].Detail != "converged" {
		t.Fatalf("line 1 round-trip wrong: %+v", lines[1])
	}
	// The standalone writer must agree with the method.
	var buf2 strings.Builder
	if err := WriteJSONL(&buf2, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf.String() {
		t.Fatal("WriteJSONL(w, events) disagrees with Tracer.WriteJSONL")
	}
}
