package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Constrain magnitudes so intermediate products stay finite.
		clamp := func(v float64) float64 { return math.Mod(v, 1e3) }
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		c := a.Cross(b)
		// c ⟂ a and c ⟂ b (within floating tolerance scaled to magnitudes)
		tol := 1e-9 * (1 + a.Norm()*b.Norm()*(a.Norm()+b.Norm()))
		return almostEq(c.Dot(a), 0, tol) && almostEq(c.Dot(b), 0, tol)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 0}
	n := v.Normalize()
	if !almostEq(n.Norm(), 1, 1e-12) {
		t.Errorf("normalized norm = %v", n.Norm())
	}
	z := Vec3{}
	if z.Normalize() != z {
		t.Error("zero vector should normalize to itself")
	}
}

func TestTriangleArea(t *testing.T) {
	// Right triangle legs 3 and 4 → area 6.
	a := Vec3{0, 0, 0}
	b := Vec3{3, 0, 0}
	c := Vec3{0, 4, 0}
	if got := TriangleArea(a, b, c); !almostEq(got, 6, 1e-12) {
		t.Errorf("area = %v, want 6", got)
	}
}

func TestTriangleNormal(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	n := TriangleNormal(a, b, c)
	if !almostEq(n.Z, 1, 1e-12) || !almostEq(n.X, 0, 1e-12) {
		t.Errorf("normal = %v, want +z", n)
	}
}

func TestTetVolume(t *testing.T) {
	// Unit right tet: volume 1/6.
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	d := Vec3{0, 0, 1}
	if got := TetVolume(a, b, c, d); !almostEq(got, 1.0/6, 1e-12) {
		t.Errorf("volume = %v, want 1/6", got)
	}
	if got := TetSignedVolume(a, b, c, d); !almostEq(got, 1.0/6, 1e-12) {
		t.Errorf("signed volume = %v, want +1/6", got)
	}
	if got := TetSignedVolume(a, c, b, d); !almostEq(got, -1.0/6, 1e-12) {
		t.Errorf("signed volume = %v, want -1/6", got)
	}
}

func TestTetCentroid(t *testing.T) {
	c := TetCentroid(Vec3{0, 0, 0}, Vec3{4, 0, 0}, Vec3{0, 4, 0}, Vec3{0, 0, 4})
	if c != (Vec3{1, 1, 1}) {
		t.Errorf("centroid = %v, want (1,1,1)", c)
	}
}

func TestAABB(t *testing.T) {
	b := NewAABB(Vec3{0, 0, 0}, Vec3{2, 1, 3})
	if !b.Contains(Vec3{1, 0.5, 1.5}) {
		t.Error("point should be inside")
	}
	if b.Contains(Vec3{3, 0, 0}) {
		t.Error("point should be outside")
	}
	if b.LongestAxis() != 2 {
		t.Errorf("longest axis = %d, want 2", b.LongestAxis())
	}
	if b.Center() != (Vec3{1, 0.5, 1.5}) {
		t.Errorf("center = %v", b.Center())
	}
}

func TestAABBExtend(t *testing.T) {
	b := NewAABB()
	b = b.Extend(Vec3{1, 1, 1})
	if !b.Contains(Vec3{1, 1, 1}) {
		t.Error("extended box should contain its point")
	}
	if b.Extent() != (Vec3{0, 0, 0}) {
		t.Errorf("single-point box extent = %v", b.Extent())
	}
}
