// Package geom provides the small amount of 3-D vector geometry the mesh
// and transport layers need: vectors, triangles, tetrahedra and axis-aligned
// bounding boxes.
package geom

import "math"

// Vec3 is a 3-D vector (also used for points).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v|. The zero vector is returned unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Triangle area for vertices a, b, c.
func TriangleArea(a, b, c Vec3) float64 {
	return 0.5 * b.Sub(a).Cross(c.Sub(a)).Norm()
}

// TriangleNormal returns the unit normal of triangle (a,b,c) following the
// right-hand rule on the vertex order.
func TriangleNormal(a, b, c Vec3) Vec3 {
	return b.Sub(a).Cross(c.Sub(a)).Normalize()
}

// TetVolume returns the (positive) volume of the tetrahedron (a,b,c,d).
func TetVolume(a, b, c, d Vec3) float64 {
	return math.Abs(b.Sub(a).Dot(c.Sub(a).Cross(d.Sub(a)))) / 6
}

// TetSignedVolume returns the signed volume of (a,b,c,d); positive when d is
// on the side of the plane (a,b,c) pointed to by the right-hand normal.
func TetSignedVolume(a, b, c, d Vec3) float64 {
	return b.Sub(a).Dot(c.Sub(a).Cross(d.Sub(a))) / 6
}

// TetCentroid returns the centroid of the tetrahedron (a,b,c,d).
func TetCentroid(a, b, c, d Vec3) Vec3 {
	return Vec3{
		(a.X + b.X + c.X + d.X) / 4,
		(a.Y + b.Y + c.Y + d.Y) / 4,
		(a.Z + b.Z + c.Z + d.Z) / 4,
	}
}

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// NewAABB returns the smallest box containing all points. Passing no points
// yields an inverted (empty) box.
func NewAABB(pts ...Vec3) AABB {
	b := AABB{
		Min: Vec3{math.Inf(1), math.Inf(1), math.Inf(1)},
		Max: Vec3{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
	for _, p := range pts {
		b = b.Extend(p)
	}
	return b
}

// Extend returns the box grown to contain p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{
		Min: Vec3{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y), math.Min(b.Min.Z, p.Z)},
		Max: Vec3{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y), math.Max(b.Max.Z, p.Z)},
	}
}

// Contains reports whether p lies inside the (closed) box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Center returns the box midpoint.
func (b AABB) Center() Vec3 {
	return Vec3{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2, (b.Min.Z + b.Max.Z) / 2}
}

// Extent returns the box edge lengths.
func (b AABB) Extent() Vec3 { return b.Max.Sub(b.Min) }

// LongestAxis returns 0, 1 or 2 for the axis of largest extent.
func (b AABB) LongestAxis() int {
	e := b.Extent()
	switch {
	case e.X >= e.Y && e.X >= e.Z:
		return 0
	case e.Y >= e.Z:
		return 1
	default:
		return 2
	}
}
