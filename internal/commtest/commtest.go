// Package commtest is the backend-conformance suite for the comm
// transport contract: one shared table of tests exercised against every
// backend (the in-memory MemTransport and the TCP netcomm backend), so
// the contract the runtime depends on — ordered pairwise delivery, sends
// that never deadlock, lane isolation, close/drain semantics, correct
// collectives — is pinned in one place.
package commtest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"jsweep/internal/comm"
)

// Backend names a transport implementation under test.
type Backend struct {
	// Name labels the subtests.
	Name string
	// New builds an n-rank world and returns one endpoint per rank plus a
	// closer tearing the whole world down (all transports). New must
	// register its own cleanup for auxiliary resources (listeners etc.).
	New func(t testing.TB, n int) (eps []comm.Endpoint, closeAll func() error)
}

// RunConformance runs the full transport-contract table against a backend.
func RunConformance(t *testing.T, b Backend) {
	t.Run("PairwiseOrder", func(t *testing.T) { testPairwiseOrder(t, b) })
	t.Run("NoSendDeadlock", func(t *testing.T) { testNoSendDeadlock(t, b) })
	t.Run("SelfSend", func(t *testing.T) { testSelfSend(t, b) })
	t.Run("LaneIsolation", func(t *testing.T) { testLaneIsolation(t, b) })
	t.Run("CloseDrain", func(t *testing.T) { testCloseDrain(t, b) })
	t.Run("Counters", func(t *testing.T) { testCounters(t, b) })
	t.Run("NotifyToken", func(t *testing.T) { testNotify(t, b) })
	t.Run("Collective", func(t *testing.T) { testCollective(t, b) })
	t.Run("ConcurrentRanks", func(t *testing.T) { testConcurrentRanks(t, b, 4, 200) })
}

// RunStress runs the heavier race-detector stress cases (skipped with
// -short): many ranks, both lanes, interleaved collectives.
func RunStress(t *testing.T, b Backend) {
	if testing.Short() {
		t.Skip("stress run skipped in -short mode")
	}
	t.Run("ConcurrentRanksLarge", func(t *testing.T) { testConcurrentRanks(t, b, 6, 1500) })
	t.Run("CollectiveStorm", func(t *testing.T) { testCollectiveStorm(t, b) })
}

// recvN drains n data-lane messages from ep, blocking via Notify.
func recvN(t testing.TB, ep comm.Endpoint, n int) []comm.Message {
	t.Helper()
	out := make([]comm.Message, 0, n)
	deadline := time.After(30 * time.Second)
	for len(out) < n {
		if m, ok := ep.TryRecv(); ok {
			out = append(out, m)
			continue
		}
		select {
		case <-ep.Notify():
		case <-time.After(200 * time.Microsecond):
		case <-deadline:
			t.Fatalf("timed out after %d of %d messages", len(out), n)
		}
	}
	return out
}

func seqMsg(from, i int) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf, uint32(from))
	binary.LittleEndian.PutUint64(buf[4:], uint64(i))
	return buf
}

func testPairwiseOrder(t *testing.T, b Backend) {
	eps, closeAll := b.New(t, 3)
	defer closeAll()
	const n = 400
	var wg sync.WaitGroup
	for _, src := range []int{0, 2} {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := eps[src].Send(1, seqMsg(src, i)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(src)
	}
	msgs := recvN(t, eps[1], 2*n)
	wg.Wait()
	next := map[int]uint64{}
	for _, m := range msgs {
		if len(m.Data) != 12 {
			t.Fatalf("message length %d", len(m.Data))
		}
		from := int(binary.LittleEndian.Uint32(m.Data))
		if from != m.From {
			t.Fatalf("message From=%d but payload says %d", m.From, from)
		}
		id := binary.LittleEndian.Uint64(m.Data[4:])
		if id != next[from] {
			t.Fatalf("rank %d: got message %d, want %d (pairwise order broken)", from, id, next[from])
		}
		next[from]++
	}
	for _, src := range []int{0, 2} {
		if next[src] != n {
			t.Errorf("rank %d delivered %d of %d", src, next[src], n)
		}
	}
}

func testNoSendDeadlock(t *testing.T, b Backend) {
	eps, closeAll := b.New(t, 2)
	defer closeAll()
	// Nobody receives until every send returned: unbounded inboxes mean no
	// send may block against a busy receiver.
	const n = 5000
	done := make(chan error, 1)
	go func() {
		payload := bytes.Repeat([]byte{0xAB}, 64)
		for i := 0; i < n; i++ {
			if err := eps[0].Send(1, payload); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sends blocked against a busy receiver")
	}
	if got := len(recvN(t, eps[1], n)); got != n {
		t.Fatalf("received %d of %d", got, n)
	}
}

func testSelfSend(t *testing.T, b Backend) {
	eps, closeAll := b.New(t, 2)
	defer closeAll()
	if err := eps[1].Send(1, []byte{42}); err != nil {
		t.Fatal(err)
	}
	m := recvN(t, eps[1], 1)[0]
	if m.From != 1 || m.Data[0] != 42 {
		t.Fatalf("self-send: from=%d data=%v", m.From, m.Data)
	}
}

func testLaneIsolation(t *testing.T, b Backend) {
	eps, closeAll := b.New(t, 2)
	defer closeAll()
	// A data message queued ahead of an OOB message must not be consumed
	// (or block) an OOB receive, and vice versa.
	if err := eps[0].Send(1, []byte("data1")); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].SendOOB(1, []byte("oob1")); err != nil {
		t.Fatal(err)
	}
	m, err := eps[1].RecvOOB()
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "oob1" || m.From != 0 {
		t.Fatalf("RecvOOB got %q from %d", m.Data, m.From)
	}
	d := recvN(t, eps[1], 1)[0]
	if string(d.Data) != "data1" {
		t.Fatalf("data lane got %q", d.Data)
	}
}

func testCloseDrain(t *testing.T, b Backend) {
	eps, closeAll := b.New(t, 2)
	if err := eps[0].Err(); err != nil {
		t.Fatalf("healthy endpoint reports terminal state %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := eps[0].Send(1, seqMsg(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eps[0].SendOOB(1, []byte("last")); err != nil {
		t.Fatal(err)
	}
	// Unblock a receiver parked in RecvOOB across the close.
	type oobRes struct {
		m   comm.Message
		err error
	}
	first := make(chan oobRes, 1)
	go func() {
		m, err := eps[1].RecvOOB()
		first <- oobRes{m, err}
	}()
	r := <-first
	if r.err != nil || string(r.m.Data) != "last" {
		t.Fatalf("pre-close RecvOOB = %v, %v", r.m, r.err)
	}
	blocked := make(chan oobRes, 1)
	go func() {
		m, err := eps[1].RecvOOB()
		blocked <- oobRes{m, err}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := closeAll(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case r := <-blocked:
		if r.err == nil {
			t.Fatalf("RecvOOB after close returned message %v, want error", r.m)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RecvOOB still blocked after close")
	}
	// Delivered data-lane messages drain after close...
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < n && time.Now().Before(deadline) {
		if _, ok := eps[1].TryRecv(); ok {
			got++
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	if got != n {
		t.Fatalf("drained %d of %d messages after close", got, n)
	}
	// ...and sends error out instead of racing the teardown.
	if err := eps[0].Send(1, []byte{1}); err == nil {
		t.Error("Send after close succeeded")
	}
	if err := eps[1].SendOOB(0, []byte{1}); err == nil {
		t.Error("SendOOB after close succeeded")
	}
	// Err exposes the terminal state to receivers that only ever wait.
	for r, ep := range eps {
		if ep.Err() == nil {
			t.Errorf("endpoint %d reports healthy after close", r)
		}
	}
}

func testCounters(t *testing.T, b Backend) {
	eps, closeAll := b.New(t, 2)
	defer closeAll()
	if err := eps[0].Send(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	recvN(t, eps[1], 2)
	sent, _, out, _ := eps[0].Counters()
	if sent != 2 || out != 150 {
		t.Errorf("sender counters: sent=%d bytesOut=%d, want 2, 150", sent, out)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, recv, _, in := eps[1].Counters()
		if recv == 2 && in == 150 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("receiver counters: recv=%d bytesIn=%d, want 2, 150", recv, in)
			break
		}
		time.Sleep(time.Millisecond)
	}
}

func testNotify(t *testing.T, b Backend) {
	eps, closeAll := b.New(t, 2)
	defer closeAll()
	if err := eps[0].Send(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-eps[1].Notify():
	case <-time.After(10 * time.Second):
		t.Fatal("no notify token after send")
	}
	if len(recvN(t, eps[1], 1)) != 1 {
		t.Fatal("message missing")
	}
}

func testCollective(t *testing.T, b Backend) {
	const n, rounds = 4, 5
	eps, closeAll := b.New(t, n)
	defer closeAll()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			coll := comm.NewCollective(eps[r], n)
			for k := 0; k < rounds; k++ {
				payload := []byte(fmt.Sprintf("r%d.k%d", r, k))
				got, err := coll.AllExchange(payload)
				if err != nil {
					errs[r] = err
					return
				}
				for src := 0; src < n; src++ {
					want := fmt.Sprintf("r%d.k%d", src, k)
					if string(got[src]) != want {
						errs[r] = fmt.Errorf("rank %d round %d: slot %d = %q, want %q",
							r, k, src, got[src], want)
						return
					}
				}
			}
			errs[r] = coll.Barrier()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

// testConcurrentRanks is the all-to-all stress: every rank sends msgs
// messages to every other rank on the data lane while collectives run on
// the OOB lane, then all counts and pairwise orders must check out.
func testConcurrentRanks(t *testing.T, b Backend, n, msgs int) {
	eps, closeAll := b.New(t, n)
	defer closeAll()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				for to := 0; to < n; to++ {
					if to == r {
						continue
					}
					if err := eps[r].Send(to, seqMsg(r, i)); err != nil {
						errs[r] = err
						return
					}
				}
			}
		}(r)
	}
	recvErrs := make([]error, n)
	var rwg sync.WaitGroup
	for r := 0; r < n; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			next := make([]uint64, n)
			total := (n - 1) * msgs
			for k := 0; k < total; k++ {
				var m comm.Message
				for {
					var ok bool
					if m, ok = eps[r].TryRecv(); ok {
						break
					}
					select {
					case <-eps[r].Notify():
					case <-time.After(100 * time.Microsecond):
					}
				}
				id := binary.LittleEndian.Uint64(m.Data[4:])
				if id != next[m.From] {
					recvErrs[r] = fmt.Errorf("rank %d: from %d got %d want %d", r, m.From, id, next[m.From])
					return
				}
				next[m.From]++
			}
		}(r)
	}
	wg.Wait()
	rwg.Wait()
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			t.Errorf("sender %d: %v", r, errs[r])
		}
		if recvErrs[r] != nil {
			t.Errorf("receiver %d: %v", r, recvErrs[r])
		}
	}
}

// testCollectiveStorm interleaves data-lane floods with many collectives
// to shake out lane or ordering races under the race detector.
func testCollectiveStorm(t *testing.T, b Backend) {
	const n, rounds = 4, 40
	eps, closeAll := b.New(t, n)
	defer closeAll()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			coll := comm.NewCollective(eps[r], n)
			for k := 0; k < rounds; k++ {
				for to := 0; to < n; to++ {
					if to != r {
						if err := eps[r].Send(to, seqMsg(r, k)); err != nil {
							errs[r] = err
							return
						}
					}
				}
				got, err := coll.AllExchange(seqMsg(r, k))
				if err != nil {
					errs[r] = err
					return
				}
				for src := 0; src < n; src++ {
					if id := binary.LittleEndian.Uint64(got[src][4:]); id != uint64(k) {
						errs[r] = fmt.Errorf("rank %d: collective round %d slot %d carries %d", r, k, src, id)
						return
					}
				}
				// Drain this round's data-lane messages.
				for k := 0; k < n-1; k++ {
					for {
						if _, ok := eps[r].TryRecv(); ok {
							break
						}
						select {
						case <-eps[r].Notify():
						case <-time.After(100 * time.Microsecond):
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}
