package bsp_test

import (
	"testing"

	"jsweep/internal/bsp"
	"jsweep/internal/geom"
	"jsweep/internal/kobayashi"
	"jsweep/internal/mesh"
	"jsweep/internal/meshgen"
	"jsweep/internal/partition"
	"jsweep/internal/quadrature"
	"jsweep/internal/sweep"
	"jsweep/internal/transport"
)

func uniformQ(prob *transport.Problem) [][]float64 {
	q := prob.NewFlux()
	zero := prob.NewFlux()
	scratch := make([]float64, prob.Groups)
	for c := 0; c < prob.M.NumCells(); c++ {
		prob.EmissionDensity(mesh.CellID(c), zero, scratch)
		for g := 0; g < prob.Groups; g++ {
			q[g][c] = scratch[g]
		}
	}
	return q
}

func TestBSPMatchesReferenceStructured(t *testing.T) {
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: 12, SnOrder: 2, Scheme: transport.Diamond})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.BlockDecompose(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := uniformQ(prob)
	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 0} {
		ex, err := bsp.New(prob, d)
		if err != nil {
			t.Fatal(err)
		}
		ex.Parallelism = par
		got, err := ex.Sweep(q)
		if err != nil {
			t.Fatal(err)
		}
		for g := range want {
			for c := range want[g] {
				if want[g][c] != got[g][c] {
					t.Fatalf("par=%d: cell %d: %v != %v", par, c, want[g][c], got[g][c])
				}
			}
		}
		st := ex.Stats()
		if st.VertexSolves != int64(prob.M.NumCells())*int64(prob.Quad.NumAngles()) {
			t.Errorf("vertex solves = %d", st.VertexSolves)
		}
		// 3 patch blocks per axis → ≥ 3 wavefront supersteps.
		if st.Supersteps < 3 {
			t.Errorf("supersteps = %d, want >= 3", st.Supersteps)
		}
	}
}

func TestBSPMatchesReferenceUnstructured(t *testing.T) {
	m, err := meshgen.Ball(6, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetMaterialFunc(func(geom.Vec3) int { return 0 })
	quad, err := quadrature.New(2)
	if err != nil {
		t.Fatal(err)
	}
	prob := &transport.Problem{
		M:      m,
		Mats:   []transport.Material{{SigmaT: []float64{0.5}, Source: []float64{2}}},
		Quad:   quad,
		Groups: 1,
		Scheme: transport.Step,
	}
	d, err := partition.ByCount(m, 6, partition.GreedyGraph)
	if err != nil {
		t.Fatal(err)
	}
	q := uniformQ(prob)
	ref, err := sweep.NewReference(prob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := bsp.New(prob, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex.Sweep(q)
	if err != nil {
		t.Fatal(err)
	}
	for g := range want {
		for c := range want[g] {
			if want[g][c] != got[g][c] {
				t.Fatalf("cell %d: %v != %v", c, want[g][c], got[g][c])
			}
		}
	}
	if ex.Stats().Messages == 0 {
		t.Error("expected halo messages")
	}
}

// The BSP superstep count grows with the patch-level critical path — the
// core inefficiency motivating JSweep (§II-D): more patches along the
// sweep direction ⇒ more barriers.
func TestBSPSuperstepsGrowWithPatchChain(t *testing.T) {
	counts := map[int]int{}
	for _, blocks := range []int{2, 4} {
		n := 8
		msh, err := mesh.NewStructured3D(n, n, n, geom.Vec3{}, geom.Vec3{X: 1, Y: 1, Z: 1})
		if err != nil {
			t.Fatal(err)
		}
		quad, _ := quadrature.New(2)
		prob := &transport.Problem{
			M:      msh,
			Mats:   []transport.Material{{SigmaT: []float64{1}, Source: []float64{1}}},
			Quad:   quad,
			Groups: 1,
			Scheme: transport.Diamond,
		}
		d, err := msh.BlockDecompose(n/blocks, n/blocks, n/blocks)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := bsp.New(prob, d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Sweep(uniformQ(prob)); err != nil {
			t.Fatal(err)
		}
		counts[blocks] = ex.Stats().Supersteps
	}
	if counts[4] <= counts[2] {
		t.Errorf("supersteps should grow with patch chain length: %v", counts)
	}
}

func TestBSPValidation(t *testing.T) {
	prob, m, err := kobayashi.Build(kobayashi.Spec{N: 8, SnOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	other, err := meshgen.Ball(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	od, err := partition.ByCount(other, 2, partition.RCB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bsp.New(prob, od); err == nil {
		t.Error("mesh mismatch should fail")
	}
	_ = m
}
