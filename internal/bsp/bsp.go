// Package bsp implements the Bulk-Synchronous-Parallel sweep baseline —
// the way a data-driven sweep must be phrased in a classic patch-based
// framework like JAxMIN before JSweep (paper §II-B, §II-D): in every
// superstep each (patch, angle) computes all vertices that are ready with
// the data received up to the previous barrier, then a global halo
// exchange delivers the produced boundary fluxes. The number of supersteps
// equals the patch-level critical path, and every barrier stalls all
// patches on the globally slowest one — precisely the inefficiency the
// data-driven runtime removes.
//
// Numerically the BSP executor is exactly equivalent to the serial
// reference (it is just another dependency-respecting schedule).
package bsp

import (
	"fmt"
	"sort"
	"sync"

	"jsweep/internal/graph"
	"jsweep/internal/mesh"
	"jsweep/internal/transport"
)

// Stats reports the cost structure of the last sweep.
type Stats struct {
	// Supersteps is the number of compute+exchange rounds.
	Supersteps int
	// Messages is the number of (source patch, target patch, angle) halo
	// transfers summed over supersteps.
	Messages int64
	// VertexSolves counts kernel invocations (= cells × angles).
	VertexSolves int64
}

// Executor is the BSP sweep baseline. It implements
// transport.SweepExecutor.
type Executor struct {
	prob   *transport.Problem
	d      *mesh.Decomposition
	graphs [][]*graph.PatchGraph // [angle][patch]
	// Parallelism bounds the goroutines used per superstep (defaults to
	// the number of programs; 1 forces serial supersteps).
	Parallelism int

	stats Stats
}

// New builds a BSP executor over a decomposition.
func New(prob *transport.Problem, d *mesh.Decomposition) (*Executor, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if d.Mesh != prob.M {
		return nil, fmt.Errorf("bsp: decomposition and problem use different meshes")
	}
	e := &Executor{prob: prob, d: d}
	na := len(prob.Quad.Directions)
	e.graphs = make([][]*graph.PatchGraph, na)
	for a := 0; a < na; a++ {
		e.graphs[a] = graph.BuildAllPatchGraphs(d, prob.Quad.Directions[a].Omega, int32(a))
	}
	return e, nil
}

// Stats returns the statistics of the last Sweep.
func (e *Executor) Stats() Stats { return e.stats }

// progState is the per-(patch, angle) BSP state.
type progState struct {
	g       *graph.PatchGraph
	counts  []int32
	ready   []int32
	psiFace []float64
	phi     [][]float64 // [group][local vertex] w·ψ̄
	// outbox collects remote face fluxes produced this superstep:
	// (target program index, target vertex, face, psi...).
	outbox []remoteFlux
	solved int64
}

type remoteFlux struct {
	tgtProg int32
	v       int32
	face    int8
	psi     []float64
}

// Sweep implements transport.SweepExecutor.
func (e *Executor) Sweep(q [][]float64) ([][]float64, error) {
	na := len(e.prob.Quad.Directions)
	np := e.d.NumPatches()
	G := e.prob.Groups
	mf := e.prob.MaxFaces()
	states := make([]*progState, na*np)
	idx := func(a, p int) int { return a*np + p }
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			g := e.graphs[a][p]
			st := &progState{
				g:       g,
				counts:  append([]int32(nil), g.InDegree...),
				psiFace: make([]float64, g.NumVertices()*mf*G),
				phi:     make([][]float64, G),
			}
			for gg := range st.phi {
				st.phi[gg] = make([]float64, g.NumVertices())
			}
			for v := int32(0); v < int32(g.NumVertices()); v++ {
				if st.counts[v] == 0 {
					st.ready = append(st.ready, v)
				}
			}
			states[idx(a, p)] = st
		}
	}

	par := e.Parallelism
	if par < 1 {
		par = len(states)
	}
	e.stats = Stats{}
	total := int64(e.prob.M.NumCells()) * int64(na)
	var solvedTotal int64

	for {
		// Compute phase: every program drains its ready set.
		work := make(chan int, len(states))
		for i := range states {
			if len(states[i].ready) > 0 {
				work <- i
			}
		}
		close(work)
		if len(work) == 0 && solvedTotal < total {
			return nil, fmt.Errorf("bsp: stalled after %d supersteps with %d of %d vertices solved (cyclic dependency?)", e.stats.Supersteps, solvedTotal, total)
		}
		if solvedTotal == total {
			break
		}
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					e.drain(states[i], idx, q)
				}
			}()
		}
		wg.Wait()
		// Exchange phase (the barrier): deliver all outboxes.
		for _, st := range states {
			if len(st.outbox) == 0 {
				continue
			}
			// Count distinct (src, tgt) messages like a halo exchange
			// would batch them.
			sort.Slice(st.outbox, func(x, y int) bool { return st.outbox[x].tgtProg < st.outbox[y].tgtProg })
			last := int32(-1)
			for _, rf := range st.outbox {
				if rf.tgtProg != last {
					e.stats.Messages++
					last = rf.tgtProg
				}
				tgt := states[rf.tgtProg]
				base := (int(rf.v)*mf + int(rf.face)) * G
				copy(tgt.psiFace[base:base+G], rf.psi)
				tgt.counts[rf.v]--
				if tgt.counts[rf.v] == 0 {
					tgt.ready = append(tgt.ready, rf.v)
				}
			}
			st.outbox = st.outbox[:0]
		}
		// Tally progress.
		solvedTotal = 0
		for _, st := range states {
			solvedTotal += st.solved
		}
		e.stats.Supersteps++
	}
	e.stats.VertexSolves = solvedTotal

	// Deterministic reduction, identical to the JSweep solver's.
	phi := e.prob.NewFlux()
	for a := 0; a < na; a++ {
		for p := 0; p < np; p++ {
			st := states[idx(a, p)]
			for g := 0; g < G; g++ {
				dst := phi[g]
				src := st.phi[g]
				for v, c := range st.g.Cells {
					dst[c] += src[v]
				}
			}
		}
	}
	return phi, nil
}

// drain solves every ready vertex of one program (the BSP "compute"
// phase), queuing remote fluxes for the barrier.
func (e *Executor) drain(st *progState, idx func(a, p int) int, q [][]float64) {
	G := e.prob.Groups
	mf := e.prob.MaxFaces()
	a := int(st.g.Angle)
	dir := e.prob.Quad.Directions[a]
	qCell := make([]float64, G)
	psiOut := make([]float64, mf*G)
	psiBar := make([]float64, G)
	for len(st.ready) > 0 {
		v := st.ready[len(st.ready)-1]
		st.ready = st.ready[:len(st.ready)-1]
		c := st.g.Cells[v]
		base := int(v) * mf * G
		for g := 0; g < G; g++ {
			qCell[g] = q[g][c]
		}
		e.prob.SolveCell(c, dir.Omega, qCell, st.psiFace[base:base+mf*G], psiOut, psiBar)
		for g := 0; g < G; g++ {
			st.phi[g][v] += dir.Weight * psiBar[g]
		}
		for _, le := range st.g.LocalEdges(v) {
			dst := (int(le.To)*mf + int(le.Face)) * G
			src := int(le.SrcFace) * G
			copy(st.psiFace[dst:dst+G], psiOut[src:src+G])
			st.counts[le.To]--
			if st.counts[le.To] == 0 {
				st.ready = append(st.ready, le.To)
			}
		}
		for _, re := range st.g.RemoteEdges(v) {
			psi := make([]float64, G)
			copy(psi, psiOut[int(re.SrcFace)*G:int(re.SrcFace)*G+G])
			st.outbox = append(st.outbox, remoteFlux{
				tgtProg: int32(idx(a, int(re.ToPatch))),
				v:       re.To,
				face:    re.Face,
				psi:     psi,
			})
		}
		st.solved++
	}
}

var _ transport.SweepExecutor = (*Executor)(nil)
