package jsweep_test

// Acceptance matrix of the declarative Job API: one Job.Run(ctx) call
// reproduces the bitwise-verified results on {kobayashi, ball, cyclic}
// × {inproc, tcp-launch, sim} from the *same* spec value — only the
// Backend field changes. The inproc run verifies against the serial
// reference; the tcp-launch run (4 real OS processes over TCP-loopback,
// via the TestMain re-exec) must report the identical flux bit-pattern
// hash; the sim run must replay the same task system in virtual time.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"jsweep"
)

// jobSpecs is the shared backend-matrix spec per mesh family.
func jobSpecs() map[string]jsweep.NodeSpec {
	return map[string]jsweep.NodeSpec{
		"kobayashi": {Mesh: "kobayashi", N: 12, SnOrder: 2, Scatter: true,
			Procs: 4, Workers: 2, Grain: 32, Tol: 1e-8},
		"ball": {Mesh: "ball", Cells: 600, SnOrder: 2, Patch: 100,
			Procs: 4, Workers: 2, Grain: 16, Tol: 1e-8},
		"cyclic": {Mesh: "cyclic", Cells: 300, SnOrder: 2, Patch: 80,
			Procs: 4, Workers: 2, Grain: 8, Tol: 1e-9},
	}
}

func TestJobBackendMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-OS-process job matrix skipped in -short mode")
	}
	ctx := context.Background()
	for mesh, spec := range jobSpecs() {
		t.Run(mesh, func(t *testing.T) {
			// inproc: full flux, serial-reference verification, and the
			// per-iteration trail.
			ispec := spec
			ispec.Backend = jsweep.BackendInProc
			var events int
			job, err := jsweep.NewJob(ispec,
				jsweep.WithVerify(),
				jsweep.WithProgress(func(ev jsweep.ProgressEvent) { events++ }),
			)
			if err != nil {
				t.Fatalf("NewJob(inproc): %v", err)
			}
			ires, err := job.Run(ctx)
			if err != nil {
				t.Fatalf("inproc run: %v", err)
			}
			if !ires.Verified {
				t.Fatal("inproc run did not verify against the serial reference")
			}
			if ires.FluxHash == "" || ires.Result == nil {
				t.Fatal("inproc run returned no flux / hash")
			}
			if len(ires.Trail) != ires.Result.Iterations || events != ires.Result.Iterations {
				t.Fatalf("trail has %d events, callback saw %d, want %d iterations",
					len(ires.Trail), events, ires.Result.Iterations)
			}
			last := ires.Trail[len(ires.Trail)-1]
			if !last.Converged || last.Residual != ires.Result.Residual {
				t.Fatalf("last trail event %+v does not match result %+v", last, ires.Result)
			}
			if last.Sweep.ComputeCalls == 0 {
				t.Fatal("trail events carry no sweep statistics")
			}

			// tcp-launch from the same spec value: 4 OS processes must
			// reproduce the identical flux bit pattern.
			lspec := spec
			lspec.Backend = jsweep.BackendTCPLaunch
			var log bytes.Buffer
			launch, err := jsweep.NewJob(lspec,
				jsweep.WithNodeCommand([]string{os.Args[0]}),
				jsweep.WithTimeout(4*time.Minute),
				jsweep.WithLog(&log),
			)
			if err != nil {
				t.Fatalf("NewJob(tcp-launch): %v", err)
			}
			lres, err := launch.Run(ctx)
			if err != nil {
				t.Fatalf("tcp-launch run: %v\nnode output:\n%s", err, log.String())
			}
			if lres.FluxHash != ires.FluxHash {
				t.Fatalf("cross-backend flux mismatch: inproc %s, tcp-launch %s",
					ires.FluxHash, lres.FluxHash)
			}

			// sim from the same spec value: the same decomposition and
			// placement replayed in virtual time.
			sspec := spec
			sspec.Backend = jsweep.BackendSim
			simJob, err := jsweep.NewJob(sspec)
			if err != nil {
				t.Fatalf("NewJob(sim): %v", err)
			}
			sres, err := simJob.Run(ctx)
			if err != nil {
				t.Fatalf("sim run: %v", err)
			}
			if sres.Sim == nil || sres.Sim.Makespan <= 0 || sres.Sim.Chunks == 0 {
				t.Fatalf("sim run returned no simulated outcome: %+v", sres.Sim)
			}
		})
	}
}

// TestNewJobValidation pins the option/backend compatibility matrix:
// mismatches fail at NewJob, not at Run.
func TestNewJobValidation(t *testing.T) {
	mem, err := jsweep.NewMemTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	cases := []struct {
		name string
		spec jsweep.NodeSpec
		opts []jsweep.JobOption
		ok   bool
	}{
		{"zero spec is inproc", jsweep.NodeSpec{}, nil, true},
		{"unknown backend", jsweep.NodeSpec{Backend: "mpi"}, nil, false},
		{"unknown mesh", jsweep.NodeSpec{Mesh: "torus"}, nil, false},
		{"inproc with node command", jsweep.NodeSpec{},
			[]jsweep.JobOption{jsweep.WithNodeCommand([]string{"x"})}, false},
		{"inproc with attach", jsweep.NodeSpec{},
			[]jsweep.JobOption{jsweep.WithAttach("c", 0, "127.0.0.1:1")}, false},
		{"attach without transport or attach", jsweep.NodeSpec{Backend: jsweep.BackendTCPAttach}, nil, false},
		{"attach with both", jsweep.NodeSpec{Backend: jsweep.BackendTCPAttach},
			[]jsweep.JobOption{jsweep.WithTransport(mem), jsweep.WithAttach("c", 0, "127.0.0.1:1")}, false},
		{"attach with transport", jsweep.NodeSpec{Backend: jsweep.BackendTCPAttach, Procs: 2},
			[]jsweep.JobOption{jsweep.WithTransport(mem)}, true},
		{"launch with transport", jsweep.NodeSpec{Backend: jsweep.BackendTCPLaunch},
			[]jsweep.JobOption{jsweep.WithTransport(mem)}, false},
		// Since the result-complete launch path, rank 0 streams its
		// per-iteration events back to the launcher — progress is legal.
		{"launch with progress", jsweep.NodeSpec{Backend: jsweep.BackendTCPLaunch},
			[]jsweep.JobOption{jsweep.WithProgress(func(jsweep.ProgressEvent) {})}, true},
		{"sim with verify", jsweep.NodeSpec{Backend: jsweep.BackendSim},
			[]jsweep.JobOption{jsweep.WithVerify()}, false},
		{"sim with transport", jsweep.NodeSpec{Backend: jsweep.BackendSim},
			[]jsweep.JobOption{jsweep.WithTransport(mem)}, false},
		{"sim plain", jsweep.NodeSpec{Backend: jsweep.BackendSim}, nil, true},
		{"cost model off sim", jsweep.NodeSpec{},
			[]jsweep.JobOption{jsweep.WithSimCostModel(jsweep.DefaultCostModel(1))}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := jsweep.NewJob(tc.spec, tc.opts...)
			if tc.ok && err != nil {
				t.Fatalf("NewJob: unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("NewJob: error expected")
			}
		})
	}
}

// TestJobSimTinyBackends smoke-runs the sim and inproc backends of every
// registered mesh family quickly (kept out of -short only for the solve
// cost of the inproc leg).
func TestJobMeshesListed(t *testing.T) {
	meshes := jsweep.Meshes()
	want := map[string]bool{"kobayashi": true, "ball": true, "reactor": true, "cyclic": true}
	for _, m := range meshes {
		delete(want, m)
	}
	if len(want) != 0 {
		t.Fatalf("Meshes() = %v missing %v", meshes, want)
	}
	if got := jsweep.Backends(); len(got) != 4 {
		t.Fatalf("Backends() = %v, want 4 entries", got)
	}
}

// TestJobTrace: WithTrace records build + per-iteration phase spans into
// RunResult.Trace, the traced flux stays bitwise identical to an
// untraced run, and WriteTrace dumps one JSON object per line.
func TestJobTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("traced solve skipped in -short mode")
	}
	ctx := context.Background()
	spec := jobSpecs()["kobayashi"]
	spec.Backend = jsweep.BackendInProc

	run := func(opts ...jsweep.JobOption) *jsweep.RunResult {
		t.Helper()
		job, err := jsweep.NewJob(spec, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	traced := run(jsweep.WithTrace())

	if plain.Trace != nil {
		t.Fatalf("untraced run carries %d trace events", len(plain.Trace))
	}
	if plain.FluxHash != traced.FluxHash {
		t.Fatalf("tracing changed the flux: %s != %s", traced.FluxHash, plain.FluxHash)
	}
	iters := traced.Result.Iterations
	phases := map[string]int{}
	for _, ev := range traced.Trace {
		phases[ev.Name]++
		if ev.Time.IsZero() {
			t.Fatalf("event %s has no timestamp", ev.Name)
		}
	}
	for _, name := range []string{"iter.source", "iter.sweep", "iter.residual"} {
		if phases[name] != iters {
			t.Fatalf("%d %s events, want %d (one per iteration); got %v", phases[name], name, iters, phases)
		}
	}
	if phases["node.build"] != 1 || phases["node.solved"] != 1 {
		t.Fatalf("missing lifecycle spans: %v", phases)
	}

	var buf bytes.Buffer
	if err := jsweep.WriteTrace(&buf, traced.Trace); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != len(traced.Trace) {
		t.Fatalf("JSONL has %d lines for %d events", len(lines), len(traced.Trace))
	}
	var ev jsweep.TraceEvent
	if err := json.Unmarshal(lines[0], &ev); err != nil {
		t.Fatalf("first JSONL line not an event: %v", err)
	}

	// WithTrace is meaningless on the simulator — typed NewJob error.
	simSpec := spec
	simSpec.Backend = jsweep.BackendSim
	if _, err := jsweep.NewJob(simSpec, jsweep.WithTrace()); err == nil {
		t.Fatal("NewJob(sim, WithTrace) should fail")
	}
}
